#include "serve/protocol.h"

#include <bit>
#include <cstring>

namespace patchdb::serve {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ProtocolError(what); }

void check_vector_len(std::uint32_t n, std::size_t elem_bytes,
                      std::size_t remaining, const char* what) {
  // A hostile count must not drive a huge allocation: the elements have
  // to actually fit in the bytes that arrived.
  if (static_cast<std::size_t>(n) * elem_bytes > remaining) {
    fail(std::string("protocol: ") + what + " count exceeds payload");
  }
}

}  // namespace

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kLookup: return "lookup";
    case Op::kFeatures: return "features";
    case Op::kNearest: return "nearest";
    case Op::kStats: return "stats";
    case Op::kAnalyze: return "analyze";
    case Op::kListIds: return "list_ids";
  }
  return "unknown";
}

std::string_view status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kNotFound: return "not_found";
    case Status::kServerError: return "server_error";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

// ----------------------------------------------------------- wire IO --

void WireWriter::u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void WireWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(std::string_view v) {
  if (v.size() > kMaxFrameBytes) fail("protocol: string exceeds frame cap");
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.append(v);
}

std::span<const unsigned char> WireReader::take(std::size_t n, const char* what) {
  if (body_.size() - pos_ < n) {
    fail(std::string("protocol: truncated payload reading ") + what);
  }
  const auto* data =
      reinterpret_cast<const unsigned char*>(body_.data()) + pos_;
  pos_ += n;
  return {data, n};
}

std::uint8_t WireReader::u8() { return take(1, "u8")[0]; }

std::uint32_t WireReader::u32() {
  const auto bytes = take(4, "u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t WireReader::u64() {
  const auto bytes = take(8, "u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

std::int64_t WireReader::i64() { return static_cast<std::int64_t>(u64()); }

float WireReader::f32() { return std::bit_cast<float>(u32()); }

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (n > remaining()) fail("protocol: string length exceeds payload");
  const auto bytes = take(n, "string");
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

void WireReader::finish(std::string_view what) {
  if (remaining() != 0) {
    fail("protocol: " + std::string(what) + " carries " +
         std::to_string(remaining()) + " trailing byte(s)");
  }
}

std::string frame(std::string_view body) {
  if (body.empty()) fail("protocol: empty frame body");
  if (body.size() > kMaxFrameBytes) fail("protocol: frame exceeds size cap");
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  std::string out = w.take();
  out.append(body);
  return out;
}

std::size_t parse_frame_header(std::span<const unsigned char> header,
                               std::size_t max_frame_bytes) {
  if (header.size() != kFrameHeaderBytes) {
    fail("protocol: short frame header");
  }
  std::uint32_t n = 0;
  for (int i = 3; i >= 0; --i) n = (n << 8) | header[static_cast<std::size_t>(i)];
  if (n == 0) fail("protocol: zero-length frame");
  if (n > max_frame_bytes) {
    fail("protocol: frame of " + std::to_string(n) +
         " bytes exceeds the cap of " + std::to_string(max_frame_bytes));
  }
  return n;
}

// ----------------------------------------------------------- request --

std::string encode_request(const Request& request) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(request.op));
  switch (request.op) {
    case Op::kPing:
    case Op::kStats:
      break;
    case Op::kLookup:
      w.str(request.lookup.id);
      break;
    case Op::kFeatures:
      w.str(request.features.id);
      w.u8(static_cast<std::uint8_t>(request.features.space));
      break;
    case Op::kNearest:
      w.u8(request.nearest.by_id ? 1 : 0);
      if (request.nearest.by_id) {
        w.str(request.nearest.id);
      } else {
        w.u32(static_cast<std::uint32_t>(request.nearest.vector.size()));
        for (double v : request.nearest.vector) w.f64(v);
      }
      w.u32(request.nearest.k);
      break;
    case Op::kAnalyze:
      w.str(request.analyze.diff_text);
      w.u8(request.analyze.interproc ? 1 : 0);
      break;
    case Op::kListIds:
      w.u8(static_cast<std::uint8_t>(request.list_ids.component));
      w.u32(request.list_ids.limit);
      break;
  }
  return w.take();
}

Request decode_request(std::string_view body) {
  WireReader r(body);
  Request request;
  const std::uint8_t op = r.u8();
  if (op < static_cast<std::uint8_t>(Op::kPing) ||
      op > static_cast<std::uint8_t>(Op::kListIds)) {
    fail("protocol: unknown opcode " + std::to_string(op));
  }
  request.op = static_cast<Op>(op);
  switch (request.op) {
    case Op::kPing:
    case Op::kStats:
      break;
    case Op::kLookup:
      request.lookup.id = r.str();
      break;
    case Op::kFeatures: {
      request.features.id = r.str();
      const std::uint8_t space = r.u8();
      if (space > static_cast<std::uint8_t>(WireFeatureSpace::kInterproc)) {
        fail("protocol: unknown feature space " + std::to_string(space));
      }
      request.features.space = static_cast<WireFeatureSpace>(space);
      break;
    }
    case Op::kNearest: {
      const std::uint8_t by_id = r.u8();
      if (by_id > 1) fail("protocol: nearest by_id must be 0 or 1");
      request.nearest.by_id = by_id == 1;
      if (request.nearest.by_id) {
        request.nearest.id = r.str();
      } else {
        const std::uint32_t dims = r.u32();
        check_vector_len(dims, 8, r.remaining(), "nearest vector");
        request.nearest.vector.resize(dims);
        for (std::uint32_t j = 0; j < dims; ++j) {
          request.nearest.vector[j] = r.f64();
        }
      }
      request.nearest.k = r.u32();
      break;
    }
    case Op::kAnalyze:
      request.analyze.diff_text = r.str();
      request.analyze.interproc = r.u8() == 1;
      break;
    case Op::kListIds: {
      const std::uint8_t component = r.u8();
      if (component > static_cast<std::uint8_t>(WireComponent::kSynthetic)) {
        fail("protocol: unknown component " + std::to_string(component));
      }
      request.list_ids.component = static_cast<WireComponent>(component);
      request.list_ids.limit = r.u32();
      break;
    }
  }
  r.finish(std::string(op_name(request.op)) + " request");
  return request;
}

// ---------------------------------------------------------- response --

std::string encode_response(Op op, const Response& response) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(response.status));
  if (response.status != Status::kOk) {
    w.str(response.error);
    return w.take();
  }
  switch (op) {
    case Op::kPing:
      w.u32(response.ping.protocol_version);
      w.u64(response.ping.patches);
      break;
    case Op::kLookup:
      w.u8(static_cast<std::uint8_t>(response.lookup.component));
      w.u8(response.lookup.is_security ? 1 : 0);
      w.i64(response.lookup.type);
      w.str(response.lookup.repo);
      w.str(response.lookup.origin);
      w.str(response.lookup.patch_text);
      break;
    case Op::kFeatures:
      w.u32(static_cast<std::uint32_t>(response.features.vector.size()));
      for (double v : response.features.vector) w.f64(v);
      break;
    case Op::kNearest:
      w.u32(static_cast<std::uint32_t>(response.nearest.hits.size()));
      for (const NearestHit& hit : response.nearest.hits) {
        w.str(hit.id);
        w.f32(hit.distance);
      }
      break;
    case Op::kStats:
      w.u64(response.stats.nvd);
      w.u64(response.stats.wild);
      w.u64(response.stats.nonsecurity);
      w.u64(response.stats.synthetic);
      w.u64(response.stats.security_total);
      w.u64(response.stats.agreement);
      w.u32(static_cast<std::uint32_t>(response.stats.categories.size()));
      for (const CategoryCount& c : response.stats.categories) {
        w.i64(c.type);
        w.u64(c.labeled);
        w.u64(c.predicted);
      }
      break;
    case Op::kAnalyze:
      w.i64(response.analyze.category);
      w.u64(response.analyze.resolved);
      w.u64(response.analyze.introduced);
      w.str(response.analyze.report);
      break;
    case Op::kListIds:
      w.u32(static_cast<std::uint32_t>(response.list_ids.ids.size()));
      for (const std::string& id : response.list_ids.ids) w.str(id);
      break;
  }
  return w.take();
}

Response decode_response(Op op, std::string_view body) {
  WireReader r(body);
  Response response;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(Status::kShuttingDown)) {
    fail("protocol: unknown status " + std::to_string(status));
  }
  response.status = static_cast<Status>(status);
  if (response.status != Status::kOk) {
    response.error = r.str();
    r.finish("error response");
    return response;
  }
  switch (op) {
    case Op::kPing:
      response.ping.protocol_version = r.u32();
      response.ping.patches = r.u64();
      break;
    case Op::kLookup: {
      const std::uint8_t component = r.u8();
      if (component == 0 ||
          component > static_cast<std::uint8_t>(WireComponent::kSynthetic)) {
        fail("protocol: bad lookup component " + std::to_string(component));
      }
      response.lookup.component = static_cast<WireComponent>(component);
      response.lookup.is_security = r.u8() == 1;
      response.lookup.type = r.i64();
      response.lookup.repo = r.str();
      response.lookup.origin = r.str();
      response.lookup.patch_text = r.str();
      break;
    }
    case Op::kFeatures: {
      const std::uint32_t dims = r.u32();
      check_vector_len(dims, 8, r.remaining(), "features vector");
      response.features.vector.resize(dims);
      for (std::uint32_t j = 0; j < dims; ++j) {
        response.features.vector[j] = r.f64();
      }
      break;
    }
    case Op::kNearest: {
      const std::uint32_t n = r.u32();
      check_vector_len(n, 4 + 4, r.remaining(), "nearest hits");
      response.nearest.hits.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        response.nearest.hits[i].id = r.str();
        response.nearest.hits[i].distance = r.f32();
      }
      break;
    }
    case Op::kStats: {
      response.stats.nvd = r.u64();
      response.stats.wild = r.u64();
      response.stats.nonsecurity = r.u64();
      response.stats.synthetic = r.u64();
      response.stats.security_total = r.u64();
      response.stats.agreement = r.u64();
      const std::uint32_t n = r.u32();
      check_vector_len(n, 8 + 8 + 8, r.remaining(), "stats categories");
      response.stats.categories.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        response.stats.categories[i].type = r.i64();
        response.stats.categories[i].labeled = r.u64();
        response.stats.categories[i].predicted = r.u64();
      }
      break;
    }
    case Op::kAnalyze:
      response.analyze.category = r.i64();
      response.analyze.resolved = r.u64();
      response.analyze.introduced = r.u64();
      response.analyze.report = r.str();
      break;
    case Op::kListIds: {
      const std::uint32_t n = r.u32();
      check_vector_len(n, 4, r.remaining(), "id list");
      response.list_ids.ids.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) response.list_ids.ids[i] = r.str();
      break;
    }
  }
  r.finish(std::string(op_name(op)) + " response");
  return response;
}

Response error_response(Status status, std::string message) {
  Response response;
  response.status = status;
  response.error = std::move(message);
  return response;
}

}  // namespace patchdb::serve
