#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace patchdb::serve {

namespace {

/// Poll slice: the longest a blocked read or accept goes without
/// rechecking the drain flag.
constexpr int kPollSliceMs = 100;

void close_quietly(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

/// Write all of `data`; false on any error (peer gone, EPIPE, ...).
/// MSG_NOSIGNAL so a dead peer surfaces as EPIPE, not SIGPIPE.
bool send_all(int fd, std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

enum class ReadOutcome {
  kOk,        // buffer filled
  kClosed,    // orderly shutdown before the first byte of this read
  kPeerGone,  // orderly shutdown after some bytes of this read arrived
  kTimeout,   // no progress for the read timeout
  kDrain,     // server draining and no bytes of this read had arrived
  kError,     // socket error (recv failed outright)
};

/// Read exactly `want` bytes, polling in short slices. Resets its
/// progress deadline on every byte received, so only a genuinely
/// stalled peer times out. When `stop_at_boundary` is set and no byte
/// has arrived yet, a raised drain flag ends the read — that is how an
/// idle keep-alive connection dies at a frame boundary during shutdown,
/// while a frame already in flight is read (and answered) to the end.
ReadOutcome read_exact(int fd, unsigned char* out, std::size_t want,
                       std::chrono::milliseconds timeout,
                       const std::atomic<bool>& draining,
                       bool stop_at_boundary) {
  std::size_t got = 0;
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (got < want) {
    if (stop_at_boundary && got == 0 &&
        draining.load(std::memory_order_relaxed)) {
      return ReadOutcome::kDrain;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kError;
    }
    if (ready == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return ReadOutcome::kTimeout;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, out + got, want - got, 0);
    if (n == 0) {
      // EOF is an ordinary disconnect either way — the caller decides
      // whether it landed on a frame boundary (kClosed) or cut a frame
      // short (kPeerGone); neither is a protocol violation by itself.
      return got == 0 ? ReadOutcome::kClosed : ReadOutcome::kPeerGone;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadOutcome::kError;
    }
    got += static_cast<std::size_t>(n);
    deadline = std::chrono::steady_clock::now() + timeout;
  }
  return ReadOutcome::kOk;
}

}  // namespace

Server::Server(const ServedDataset& dataset, ServerOptions options)
    : dataset_(dataset), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error("serve: Server::start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close_quietly(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    close_quietly(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  std::size_t threads = options_.threads;
  if (threads == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    threads = hw > 64 ? hw : 64;
  }
  util::ThreadPool::Options pool_options;
  pool_options.threads = threads;
  pool_options.max_pending = options_.max_pending;
  pool_options.overflow = util::ThreadPool::Overflow::kReject;
  pool_ = std::make_unique<util::ThreadPool>(pool_options);

  // Seed the counters the bench gate asserts on, so a clean run still
  // reports explicit zeros instead of missing metrics.
  PATCHDB_COUNTER_ADD("serve.protocol_errors", 0);
  PATCHDB_COUNTER_ADD("serve.timeouts", 0);
  PATCHDB_COUNTER_ADD("serve.requests", 0);
  PATCHDB_COUNTER_ADD("serve.disconnects_midframe", 0);
  PATCHDB_COUNTER_ADD("serve.socket_errors", 0);
  PATCHDB_GAUGE_SET("serve.active_connections", 0.0);
  PATCHDB_GAUGE_SET("serve.port", static_cast<double>(port_));

  started_ = true;
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  draining_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  close_quietly(listen_fd_);
  listen_fd_ = -1;
  // In-flight connection handlers notice the drain flag at their next
  // poll slice, finish the request they are serving, and return; the
  // pool destructor joins the workers after the queue empties.
  pool_->wait_idle();
  pool_.reset();
}

void Server::acceptor_loop() {
  PATCHDB_TRACE_SPAN("serve.acceptor");
  while (!draining_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket gone; nothing left to accept
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    PATCHDB_COUNTER_ADD("serve.connections", 1);
    const bool queued = pool_->try_submit([this, fd] { serve_connection(fd); });
    if (!queued) {
      // Backpressure: every worker busy and the pending queue at its
      // cap. Shed with an explicit busy error rather than letting the
      // accept backlog grow without a serving worker in sight.
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      PATCHDB_COUNTER_ADD("serve.connections_shed", 1);
      const Response busy = error_response(
          Status::kShuttingDown, "server at capacity; retry later");
      send_all(fd, frame(encode_response(Op::kPing, busy)));
      close_quietly(fd);
    }
  }
}

void Server::serve_connection(int fd) {
  PATCHDB_GAUGE_ADD("serve.active_connections", 1.0);
  std::vector<unsigned char> header(kFrameHeaderBytes);
  std::string body;

  const auto fail_protocol = [&](const std::string& message) {
    PATCHDB_COUNTER_ADD("serve.protocol_errors", 1);
    const Response err = error_response(Status::kBadRequest, message);
    send_all(fd, frame(encode_response(Op::kPing, err)));
  };

  for (;;) {
    // Frame header. An idle connection parks here; drain closes it.
    ReadOutcome outcome =
        read_exact(fd, header.data(), header.size(), options_.read_timeout,
                   draining_, /*stop_at_boundary=*/true);
    if (outcome == ReadOutcome::kTimeout) {
      PATCHDB_COUNTER_ADD("serve.timeouts", 1);
      break;
    }
    if (outcome == ReadOutcome::kPeerGone) {
      // Peer hung up after sending part of a header: an ordinary
      // disconnect on a slow socket, not frame corruption.
      PATCHDB_COUNTER_ADD("serve.disconnects_midframe", 1);
      break;
    }
    if (outcome == ReadOutcome::kError) {
      PATCHDB_COUNTER_ADD("serve.socket_errors", 1);
      break;
    }
    if (outcome != ReadOutcome::kOk) break;  // kClosed / kDrain: clean end

    std::size_t body_len = 0;
    try {
      body_len = parse_frame_header(header, options_.max_frame_bytes);
    } catch (const ProtocolError& e) {
      fail_protocol(e.what());
      break;
    }

    // Frame body: the request is now in flight, so a drain no longer
    // interrupts it — read it fully and answer it.
    body.resize(body_len);
    outcome = read_exact(fd, reinterpret_cast<unsigned char*>(body.data()),
                         body.size(), options_.read_timeout, draining_,
                         /*stop_at_boundary=*/false);
    if (outcome == ReadOutcome::kTimeout) {
      PATCHDB_COUNTER_ADD("serve.timeouts", 1);
      break;
    }
    if (outcome == ReadOutcome::kClosed || outcome == ReadOutcome::kPeerGone) {
      // The header promised body_len bytes and the peer hung up before
      // delivering them (kClosed here still means mid-frame: the header
      // was already consumed). Ordinary disconnect, not corruption.
      PATCHDB_COUNTER_ADD("serve.disconnects_midframe", 1);
      break;
    }
    if (outcome == ReadOutcome::kError) {
      PATCHDB_COUNTER_ADD("serve.socket_errors", 1);
      break;
    }
    if (outcome != ReadOutcome::kOk) break;

    Request request;
    try {
      request = decode_request(body);
    } catch (const ProtocolError& e) {
      fail_protocol(e.what());
      break;
    }

    const std::string op = std::string(op_name(request.op));
    Response response;
    const auto start = std::chrono::steady_clock::now();
    {
      obs::ScopedSpan span("serve." + op);
      try {
        response = dataset_.handle(request);
      } catch (const std::exception& e) {
        response = error_response(Status::kServerError, e.what());
      }
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    PATCHDB_COUNTER_ADD("serve.requests", 1);
    PATCHDB_COUNTER_ADD("serve.requests." + op, 1);
    PATCHDB_HISTOGRAM_OBSERVE("serve.request_ms", ms);
    PATCHDB_HISTOGRAM_OBSERVE("serve." + op + "_ms", ms);
    if (response.status == Status::kServerError) {
      PATCHDB_COUNTER_ADD("serve.server_errors", 1);
    }

    if (!send_all(fd, frame(encode_response(request.op, response)))) break;
    if (draining_.load(std::memory_order_relaxed)) break;
  }

  close_quietly(fd);
  PATCHDB_GAUGE_ADD("serve.active_connections", -1.0);
}

}  // namespace patchdb::serve
