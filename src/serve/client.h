// Blocking typed client for the patchdbd protocol: one TCP connection,
// one outstanding request. Each call frames a request, writes it,
// reads exactly one response frame, and decodes it with the decoder
// matching the request's op. Throws std::runtime_error on transport
// failures (connect/read/write) and ProtocolError on a malformed
// response; an application-level error (kNotFound, kBadRequest, ...)
// is NOT an exception — it comes back in Response::status so callers
// can distinguish "the id does not exist" from "the daemon is gone".
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace patchdb::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a daemon. Throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(5000));

  bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// Send any request and return the decoded response. Throws on
  /// transport or protocol errors; server-reported failures come back
  /// in Response::status.
  Response call(const Request& request);

  // Typed conveniences over call().
  Response ping();
  Response lookup(const std::string& id);
  Response features(const std::string& id,
                    WireFeatureSpace space = WireFeatureSpace::kSyntactic);
  Response nearest_by_id(const std::string& id, std::uint32_t k);
  Response nearest_by_vector(const std::vector<double>& vector,
                             std::uint32_t k);
  Response stats();
  Response analyze(const std::string& diff_text, bool interproc = false);
  Response list_ids(WireComponent component = WireComponent::kAll,
                    std::uint32_t limit = 0);

 private:
  int fd_ = -1;
  std::chrono::milliseconds timeout_{5000};
};

}  // namespace patchdb::serve
