// patchdbd wire protocol: length-prefixed binary frames over a stream
// socket. Every frame is
//
//   u32  body_length   (little-endian, 1 .. kMaxFrameBytes)
//   body
//
// A request body is `u8 opcode` + opcode-specific payload; a response
// body is `u8 status` + payload (an error payload is one string with
// the failure message). Integers are fixed-width little-endian, floats
// travel as their IEEE-754 bit patterns (f32 in u32, f64 in u64), and
// strings are `u32 length` + raw bytes — no terminator, no text
// escaping, so a patch file with any byte content round-trips.
//
// The protocol is deliberately dumb: no compression, no multiplexing,
// one outstanding request per connection. Requests on one connection
// are served strictly in order; concurrency comes from opening more
// connections (the daemon's worker pool serves each connection on a
// worker). Malformed frames — oversized length, short payload, unknown
// opcode, trailing bytes — are answered with kBadRequest where a
// response is still possible and the connection is closed; a client
// that lies about lengths can never wedge a worker for more than the
// server's read timeout.
//
// A peer that simply hangs up mid-frame (EOF after part of a header or
// before a declared body finished arriving) is NOT malformed: the
// server records it under `serve.disconnects_midframe` and closes
// quietly, so slow-socket disconnects never masquerade as corruption
// in `serve.protocol_errors`. Genuine recv() failures count as
// `serve.socket_errors`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::serve {

/// Protocol revision, echoed by Ping so clients can detect skew.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a frame body. Large enough for any realistic patch or
/// analyze report, small enough that a hostile length prefix cannot
/// make a worker allocate gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/// Bytes of the frame header (the u32 body length).
inline constexpr std::size_t kFrameHeaderBytes = 4;

enum class Op : std::uint8_t {
  kPing = 1,      // liveness + version + dataset shape
  kLookup = 2,    // patch by commit id -> metadata + patch text
  kFeatures = 3,  // feature vector by commit id
  kNearest = 4,   // k nearest patches to an id or a submitted vector
  kStats = 5,     // Table V category composition of the dataset
  kAnalyze = 6,   // run the security checkers on a submitted diff
  kListIds = 7,   // enumerate patch ids (for clients and load drivers)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,   // malformed payload or semantically invalid input
  kNotFound = 2,     // unknown patch id
  kServerError = 3,  // request raised an unexpected exception
  kShuttingDown = 4, // daemon is draining; retry against a live instance
};

std::string_view op_name(Op op) noexcept;
std::string_view status_name(Status status) noexcept;

/// Thrown by decoders on any malformed frame or payload.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

// ----------------------------------------------------------- wire IO --

/// Appends wire-encoded values to an owned buffer.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f32(float v);
  void f64(double v);
  void str(std::string_view v);

  const std::string& buffer() const noexcept { return buffer_; }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reads over a received body; every overrun throws
/// ProtocolError. finish() rejects trailing bytes so a payload must be
/// exactly its declared shape.
class WireReader {
 public:
  explicit WireReader(std::string_view body) : body_(body) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::string str();

  std::size_t remaining() const noexcept { return body_.size() - pos_; }
  /// Throws when undecoded bytes remain.
  void finish(std::string_view what);

 private:
  std::span<const unsigned char> take(std::size_t n, const char* what);

  std::string_view body_;
  std::size_t pos_ = 0;
};

/// Prefix `body` with its u32 length. Throws ProtocolError when the
/// body is empty or exceeds kMaxFrameBytes.
std::string frame(std::string_view body);

/// Parse a frame header; returns the body length. Throws ProtocolError
/// on a zero or oversized length.
std::size_t parse_frame_header(std::span<const unsigned char> header,
                               std::size_t max_frame_bytes = kMaxFrameBytes);

// ----------------------------------------------------- request types --

/// Which feature space a Features request wants (mirrors
/// feature::FeatureSpace; pinned u8 values are the wire contract).
enum class WireFeatureSpace : std::uint8_t {
  kSyntactic = 0,
  kSemantic = 1,
  kInterproc = 2,
};

/// Dataset component selector for ListIds (0 = every component).
enum class WireComponent : std::uint8_t {
  kAll = 0,
  kNvd = 1,
  kWild = 2,
  kNonsecurity = 3,
  kSynthetic = 4,
};

struct PingRequest {
  friend bool operator==(const PingRequest&, const PingRequest&) = default;
};

struct LookupRequest {
  std::string id;
  friend bool operator==(const LookupRequest&, const LookupRequest&) = default;
};

struct FeaturesRequest {
  std::string id;
  WireFeatureSpace space = WireFeatureSpace::kSyntactic;
  friend bool operator==(const FeaturesRequest&, const FeaturesRequest&) = default;
};

struct NearestRequest {
  /// Query by id (vector ignored) or by raw 60-dim feature vector
  /// (id empty). by_id disambiguates an empty id from a present one.
  bool by_id = true;
  std::string id;
  std::vector<double> vector;
  std::uint32_t k = 5;
  friend bool operator==(const NearestRequest&, const NearestRequest&) = default;
};

struct StatsRequest {
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

struct AnalyzeRequest {
  std::string diff_text;
  bool interproc = false;
  friend bool operator==(const AnalyzeRequest&, const AnalyzeRequest&) = default;
};

struct ListIdsRequest {
  WireComponent component = WireComponent::kAll;
  std::uint32_t limit = 0;  // 0 = no limit
  friend bool operator==(const ListIdsRequest&, const ListIdsRequest&) = default;
};

/// A decoded request: exactly one op, payload in the matching member.
struct Request {
  Op op = Op::kPing;
  PingRequest ping;
  LookupRequest lookup;
  FeaturesRequest features;
  NearestRequest nearest;
  StatsRequest stats;
  AnalyzeRequest analyze;
  ListIdsRequest list_ids;
};

/// Encode a request as a frame body (opcode + payload, no length
/// prefix — pass through frame() before writing to a socket).
std::string encode_request(const Request& request);

/// Decode a request body. Throws ProtocolError on unknown opcode,
/// short payload, or trailing bytes.
Request decode_request(std::string_view body);

// ---------------------------------------------------- response types --

struct PingResponse {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint64_t patches = 0;  // every component
  friend bool operator==(const PingResponse&, const PingResponse&) = default;
};

struct LookupResponse {
  WireComponent component = WireComponent::kNvd;
  bool is_security = false;
  std::int64_t type = 0;  // corpus::PatchType numeric value
  std::string repo;       // natural patches; empty for synthetic
  std::string origin;     // synthetic patches; empty for natural
  std::string patch_text; // full unified diff, byte-exact
  friend bool operator==(const LookupResponse&, const LookupResponse&) = default;
};

struct FeaturesResponse {
  std::vector<double> vector;
  friend bool operator==(const FeaturesResponse&, const FeaturesResponse&) = default;
};

struct NearestHit {
  std::string id;
  float distance = 0.0f;  // core::l2_cell output, bit-exact
  friend bool operator==(const NearestHit&, const NearestHit&) = default;
};

struct NearestResponse {
  std::vector<NearestHit> hits;  // ascending (distance, corpus index)
  friend bool operator==(const NearestResponse&, const NearestResponse&) = default;
};

/// One Table V row of the served dataset's composition.
struct CategoryCount {
  std::int64_t type = 0;      // 1..12
  std::uint64_t labeled = 0;    // ground-truth count
  std::uint64_t predicted = 0;  // categorizer count
  friend bool operator==(const CategoryCount&, const CategoryCount&) = default;
};

struct StatsResponse {
  std::uint64_t nvd = 0;
  std::uint64_t wild = 0;
  std::uint64_t nonsecurity = 0;
  std::uint64_t synthetic = 0;
  std::uint64_t security_total = 0;  // labeled security patches scanned
  std::uint64_t agreement = 0;       // categorizer == label
  std::vector<CategoryCount> categories;  // 12 rows, Table V order
  friend bool operator==(const StatsResponse&, const StatsResponse&) = default;
};

struct AnalyzeResponse {
  std::int64_t category = 0;  // core::categorize of the submitted diff
  std::uint64_t resolved = 0;
  std::uint64_t introduced = 0;
  std::string report;  // analysis::render_report text
  friend bool operator==(const AnalyzeResponse&, const AnalyzeResponse&) = default;
};

struct ListIdsResponse {
  std::vector<std::string> ids;
  friend bool operator==(const ListIdsResponse&, const ListIdsResponse&) = default;
};

/// A decoded response. On any status but kOk only `error` is
/// meaningful; on kOk the member matching the request's op is set.
struct Response {
  Status status = Status::kOk;
  std::string error;

  PingResponse ping;
  LookupResponse lookup;
  FeaturesResponse features;
  NearestResponse nearest;
  StatsResponse stats;
  AnalyzeResponse analyze;
  ListIdsResponse list_ids;
};

/// Encode a response body for `op` (status + payload; the op is not on
/// the wire — a connection has one outstanding request, so the client
/// knows which decoder to run).
std::string encode_response(Op op, const Response& response);

/// Decode a response body for a request of type `op`.
Response decode_response(Op op, std::string_view body);

/// Shorthand for building an error response.
Response error_response(Status status, std::string message);

}  // namespace patchdb::serve
