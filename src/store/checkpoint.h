// Checkpointed augmentation: persist core::LoopCheckpoint at every
// round boundary so a killed build resumes instead of restarting. The
// paper's augmentation loop (Algorithm 1, Table II) is a long-running,
// human-in-the-loop job; losing hours of expert verification to a crash
// is not acceptable at production scale.
//
// Checkpoint file (`<dir>/checkpoint.csv`): a sealed CSV document —
// version line, tagged rows (fingerprint, counters, per-round stats,
// then the verified/rejected/residual commit sets in order), and the
// FNV checksum trailer. Written atomically after every round; a torn
// or tampered checkpoint fails its checksum and refuses to resume.
//
// A resumed build is bit-identical to an uninterrupted one: the world
// is rebuilt deterministically from the same seed, the loop state is
// restored commit-by-commit in recorded order (including the residual
// pool's exact order, which candidate selection depends on), and the
// remaining rounds and export run unchanged.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string_view>

#include "core/augment.h"
#include "core/patchdb.h"

namespace patchdb::store {

/// First line of a checkpoint file ("#patchdb.checkpoint.v1").
std::string_view checkpoint_version_line();

/// `<dir>/checkpoint.csv`.
std::filesystem::path checkpoint_path(const std::filesystem::path& dir);

/// Fingerprint of every option that determines the simulated world and
/// the candidate-selection behavior. A checkpoint written under one
/// fingerprint refuses to resume under another: the commits it names
/// would no longer exist (different world) or the remaining rounds
/// would diverge (different selection engine).
std::uint64_t build_fingerprint(const core::BuildOptions& options);

/// Atomically (re)write `<dir>/checkpoint.csv`.
void write_checkpoint(const std::filesystem::path& dir,
                      const core::LoopCheckpoint& checkpoint,
                      std::uint64_t fingerprint);

/// Read and verify a checkpoint. Throws std::runtime_error when the
/// file is missing, corrupted (checksum/format), or was written under a
/// different fingerprint (pass `expected_fingerprint = kAnyFingerprint`
/// to skip the fingerprint check, e.g. for fsck).
inline constexpr std::uint64_t kAnyFingerprint = ~std::uint64_t{0};
core::LoopCheckpoint read_checkpoint(const std::filesystem::path& dir,
                                     std::uint64_t expected_fingerprint);

/// core::build_patchdb with checkpoint/resume wired in (obs counter
/// store.resumes). Passthrough when options.checkpoint_dir is empty.
/// With options.resume and a valid checkpoint present, the augmentation
/// restarts at the last completed round; with resume and no checkpoint
/// the build simply starts fresh.
core::PatchDb build_with_checkpoints(const core::BuildOptions& options);

}  // namespace patchdb::store
