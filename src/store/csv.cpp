#include "store/csv.h"

#include <stdexcept>

namespace patchdb::store {

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> csv_parse(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    std::vector<std::string> row;
    bool row_done = false;
    while (!row_done) {
      std::string field;
      if (i < n && text[i] == '"') {
        ++i;
        bool closed = false;
        while (i < n) {
          const char c = text[i];
          if (c == '"') {
            if (i + 1 < n && text[i + 1] == '"') {
              field += '"';
              i += 2;
              continue;
            }
            ++i;
            closed = true;
            break;
          }
          field += c;
          ++i;
        }
        if (!closed) throw std::runtime_error("csv: unterminated quoted field");
        if (i >= n) {
          row_done = true;
        } else if (text[i] == ',') {
          ++i;
        } else if (text[i] == '\n') {
          ++i;
          row_done = true;
        } else if (text[i] == '\r' && i + 1 < n && text[i + 1] == '\n') {
          i += 2;
          row_done = true;
        } else {
          throw std::runtime_error("csv: garbage after closing quote");
        }
      } else {
        while (i < n && text[i] != ',' && text[i] != '\n') {
          if (text[i] == '"') {
            throw std::runtime_error("csv: stray quote in unquoted field");
          }
          field += text[i];
          ++i;
        }
        if (i >= n || text[i] == '\n') {
          if (!field.empty() && field.back() == '\r') field.pop_back();
          if (i < n) ++i;
          row_done = true;
        } else {
          ++i;  // ','
        }
      }
      row.push_back(std::move(field));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

long long parse_int_field(std::string_view text, long long max, const char* what) {
  if (text.empty()) {
    throw std::runtime_error(std::string("store: empty ") + what + " field");
  }
  long long value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error(std::string("store: malformed ") + what +
                               " field '" + std::string(text) + "'");
    }
    value = value * 10 + (c - '0');
    if (value > max) {
      throw std::runtime_error(std::string("store: ") + what +
                               " field out of range: '" + std::string(text) + "'");
    }
  }
  return value;
}

}  // namespace patchdb::store
