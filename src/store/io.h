// Crash-safe file I/O for the store: every file is written to a
// temporary sibling and atomically renamed into place, so a killed
// export or checkpoint never leaves a half-written file at its final
// path. Documents that must be tamper-evident (manifest, features,
// checkpoints) are "sealed" with a trailing FNV-1a checksum line that
// readers verify before parsing.
//
// A fault-injection hook covers the whole write path for the kill-point
// tests: fail the Nth write before it commits (simulating a crash
// between rounds) or leave a deliberately torn file at the destination
// (simulating a non-atomic writer, which fsck and resume must detect).
//
// Obs counters: store.writes, store.bytes, store.checksum_failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace patchdb::store {

/// Thrown (only) by the fault-injection hook so tests can distinguish a
/// planted crash from a real I/O error.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// Test hook: make the Nth atomic_write_file call fail. With
/// `truncate` the faulting write leaves half the content at the
/// destination (a torn, non-atomic write); without it the destination
/// is untouched (a crash before the rename committed).
struct FaultPlan {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  /// 0-based index of the write to fail; kNever disables the hook.
  std::size_t fail_write = kNever;
  bool truncate = false;
};

/// Install a plan (resets the write counter) / disarm the hook.
void set_fault_plan(const FaultPlan& plan) noexcept;
void clear_fault_plan() noexcept;

/// Writes performed since the last set/clear_fault_plan (test aid for
/// sweeping every kill point).
std::size_t fault_write_count() noexcept;

/// Read a whole file; throws std::runtime_error when unreadable.
std::string read_file(const std::filesystem::path& path);

/// Write-to-temp + rename. Throws std::runtime_error on I/O failure and
/// FaultInjected when the armed fault plan fires.
void atomic_write_file(const std::filesystem::path& path, std::string_view content);

/// Append the checksum trailer line ("#fnv1a64 <16 hex>\n") covering
/// every preceding byte. A missing final newline is added first so the
/// trailer is always a line of its own.
std::string with_checksum_trailer(std::string body);

/// Verify and strip the trailer; returns the body. Throws
/// std::runtime_error (and bumps store.checksum_failures) when the
/// trailer is missing, malformed, or does not match — i.e. any flipped
/// or truncated byte anywhere in the document.
std::string_view strip_checksum_trailer(std::string_view sealed,
                                        const std::string& what);

}  // namespace patchdb::store
