// Strict RFC 4180-style CSV for the store's metadata files. The seed
// exporter wrote fields verbatim, so a repo name containing a comma
// corrupted the manifest; this module quotes on write and parses
// quote-aware on read, rejecting (never silently repairing) malformed
// input. Quoted fields round-trip separators, quotes, and CR/LF.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace patchdb::store {

/// Quote `field` when it contains ',', '"', '\r' or '\n' (embedded
/// quotes doubled); returned verbatim otherwise.
std::string csv_escape(std::string_view field);

/// Parse a whole CSV document. Rows end at an unquoted '\n' (a CRLF
/// terminator and a trailing '\r' before EOF are consumed); a trailing
/// newline does not produce a final empty row. Throws
/// std::runtime_error on stray or unterminated quotes and on garbage
/// after a closing quote.
std::vector<std::vector<std::string>> csv_parse(std::string_view text);

/// Strict non-negative integer field: every character must be a digit
/// and the value must not exceed `max`. Throws std::runtime_error
/// naming `what` otherwise — a corrupted numeric field must fail the
/// load, not silently parse as 0 the way std::atoi did.
long long parse_int_field(std::string_view text, long long max, const char* what);

}  // namespace patchdb::store
