// On-disk dataset layout — the release format. A PatchDB export is a
// directory tree mirroring how the real PatchDB is published (one
// `.patch` file per commit, grouped by component, plus CSV metadata):
//
//   <root>/
//     manifest.csv             # one row per patch: id, component, label,
//                              # type, repo, origin, variant
//     features.csv             # one row per natural patch: id + 60 features
//     nvd/<commit>.patch
//     wild/<commit>.patch
//     nonsecurity/<commit>.patch
//     synthetic/<commit>.patch
//
// Exports round-trip: load_patchdb(export_patchdb(db)) reproduces every
// patch byte-for-byte (modulo snapshots, which are not exported — they
// are reconstruction artifacts of the simulator, not dataset content).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/patchdb.h"

namespace patchdb::store {

struct ExportStats {
  std::size_t patches_written = 0;
  std::size_t feature_rows = 0;
  std::filesystem::path root;
};

/// Write the dataset under `root` (created if absent; existing files are
/// overwritten). Throws std::runtime_error on I/O failure.
ExportStats export_patchdb(const core::PatchDb& db, const std::filesystem::path& root);

/// A dataset loaded back from disk. Snapshots are empty (see above);
/// synthetic truth/variant/origin metadata is restored from the manifest.
struct LoadedPatchDb {
  std::vector<corpus::CommitRecord> nvd_security;
  std::vector<corpus::CommitRecord> wild_security;
  std::vector<corpus::CommitRecord> nonsecurity;
  std::vector<synth::SyntheticPatch> synthetic;
};

/// Read an exported dataset. Throws std::runtime_error when the manifest
/// is missing or malformed, or when a listed patch file fails to parse.
LoadedPatchDb load_patchdb(const std::filesystem::path& root);

/// Render one manifest row (exposed for tests).
std::string manifest_header();

}  // namespace patchdb::store
