// On-disk dataset layout — the release format. A PatchDB export is a
// directory tree mirroring how the real PatchDB is published (one
// `.patch` file per commit, grouped by component, plus CSV metadata):
//
//   <root>/
//     manifest.csv             # version line, header, one row per patch
//                              # (id, component, label, type, repo,
//                              # origin, variant, modified_after,
//                              # fnv1a64 checksum of the patch file),
//                              # sealed with a checksum trailer
//     features.csv             # one row per natural patch: id + 60
//                              # features; same version line + trailer
//     nvd/<commit>.patch
//     wild/<commit>.patch
//     nonsecurity/<commit>.patch
//     synthetic/<commit>.patch
//
// Format v2 (crash-safe store): string fields are CSV-escaped, every
// file is written atomically (temp + rename) with the manifest last so
// a killed export never publishes a manifest describing missing files,
// and loads verify both the manifest's own trailer checksum and each
// patch file's recorded content checksum. Parsing is strict: malformed
// numeric fields, unknown labels/components/types, and checksum
// mismatches all throw instead of loading as garbage.
//
// Exports round-trip: load_patchdb(export_patchdb(db)) reproduces every
// patch byte-for-byte (modulo snapshots, which are not exported — they
// are reconstruction artifacts of the simulator, not dataset content).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/patchdb.h"

namespace patchdb::store {

struct ExportStats {
  std::size_t patches_written = 0;
  std::size_t feature_rows = 0;
  std::filesystem::path root;
};

/// Write the dataset under `root` (created if absent; existing files are
/// overwritten). Throws std::runtime_error on I/O failure.
ExportStats export_patchdb(const core::PatchDb& db, const std::filesystem::path& root);

/// A dataset loaded back from disk. Snapshots are empty (see above);
/// synthetic truth/variant/origin metadata is restored from the manifest.
struct LoadedPatchDb {
  std::vector<corpus::CommitRecord> nvd_security;
  std::vector<corpus::CommitRecord> wild_security;
  std::vector<corpus::CommitRecord> nonsecurity;
  std::vector<synth::SyntheticPatch> synthetic;
};

/// Read an exported dataset. Throws std::runtime_error when the manifest
/// is missing, malformed, fails its checksum, or when a listed patch
/// file is absent, corrupted, or fails to parse.
LoadedPatchDb load_patchdb(const std::filesystem::path& root);

/// First line of manifest.csv and features.csv ("#patchdb.store.v2").
std::string_view store_version_line();

/// Column header of the manifest (exposed for tests).
std::string manifest_header();

}  // namespace patchdb::store
