#include "store/checkpoint.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "store/csv.h"
#include "store/io.h"
#include "util/hash.h"
#include "util/log.h"

namespace patchdb::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kVersionLine = "#patchdb.checkpoint.v1";

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
  out += '|';
}

void append_double(std::string& out, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  append_u64(out, bits);
}

[[noreturn]] void corrupt(const std::string& why) {
  throw std::runtime_error("store: checkpoint: " + why);
}

std::size_t parse_count(const std::vector<std::string>& row, std::size_t index,
                        const char* what) {
  if (index >= row.size()) corrupt(std::string("missing ") + what);
  return static_cast<std::size_t>(
      parse_int_field(row[index], static_cast<long long>(1) << 62, what));
}

}  // namespace

std::string_view checkpoint_version_line() { return kVersionLine; }

fs::path checkpoint_path(const fs::path& dir) { return dir / "checkpoint.csv"; }

std::uint64_t build_fingerprint(const core::BuildOptions& options) {
  // Everything the simulated world and the candidate selection depend
  // on. Synthesis and round-count knobs are excluded on purpose: they
  // run after (or extend) the checkpointed rounds without invalidating
  // them.
  std::string canon;
  const corpus::WorldConfig& w = options.world;
  append_u64(canon, w.repos);
  append_u64(canon, w.nvd_security);
  append_u64(canon, w.wild_pool);
  append_double(canon, w.wild_security_rate);
  append_double(canon, w.entry_missing_link_prob);
  append_double(canon, w.dead_link_prob);
  append_double(canon, w.wrong_link_prob);
  append_u64(canon, w.keep_nvd_snapshots ? 1 : 0);
  append_u64(canon, w.keep_wild_snapshots ? 1 : 0);
  append_double(canon, w.label_noise);
  append_u64(canon, w.publish_wild_pages ? 1 : 0);
  append_double(canon, w.commit.multi_file_prob);
  append_double(canon, w.commit.noise_file_prob);
  append_u64(canon, w.commit.min_neighbor_functions);
  append_u64(canon, w.commit.max_neighbor_functions);
  append_double(canon, w.commit.bundle_cleanup_prob);
  append_double(canon, w.commit.euphemize_prob);
  append_u64(canon, w.seed);
  append_u64(canon, options.use_streaming_link ? 1 : 0);
  append_u64(canon, options.streaming_link.top_k);
  append_u64(canon, options.streaming_link.tile_cols);
  append_u64(canon, options.streaming_link.memory_cap_bytes);
  return util::fnv1a64(canon);
}

void write_checkpoint(const fs::path& dir, const core::LoopCheckpoint& checkpoint,
                      std::uint64_t fingerprint) {
  fs::create_directories(dir);
  std::string body(kVersionLine);
  body += '\n';
  body += "fingerprint," + util::to_hex(fingerprint) + '\n';
  body += "rounds_run," + std::to_string(checkpoint.rounds_run) + '\n';
  body += "finished,";
  body += checkpoint.finished ? '1' : '0';
  body += '\n';
  body += "effort," + std::to_string(checkpoint.oracle_effort) + '\n';
  for (const core::RoundStats& r : checkpoint.history) {
    body += "round," + std::to_string(r.round) + ',' +
            std::to_string(r.pool_size) + ',' + std::to_string(r.candidates) +
            ',' + std::to_string(r.verified_security) + '\n';
  }
  for (const std::string& commit : checkpoint.wild_security) {
    body += "security," + csv_escape(commit) + '\n';
  }
  for (const std::string& commit : checkpoint.nonsecurity) {
    body += "nonsecurity," + csv_escape(commit) + '\n';
  }
  for (const std::string& commit : checkpoint.pool) {
    body += "pool," + csv_escape(commit) + '\n';
  }
  atomic_write_file(checkpoint_path(dir), with_checksum_trailer(std::move(body)));
}

core::LoopCheckpoint read_checkpoint(const fs::path& dir,
                                     std::uint64_t expected_fingerprint) {
  const std::string sealed = read_file(checkpoint_path(dir));
  const std::string_view body = strip_checksum_trailer(sealed, "checkpoint.csv");
  if (body.substr(0, kVersionLine.size()) != kVersionLine ||
      body.size() <= kVersionLine.size() || body[kVersionLine.size()] != '\n') {
    corrupt("unsupported version (expected " + std::string(kVersionLine) + ")");
  }

  core::LoopCheckpoint cp;
  bool saw_fingerprint = false;
  bool saw_rounds = false;
  for (const auto& row : csv_parse(body.substr(kVersionLine.size() + 1))) {
    if (row.empty() || row[0].empty()) corrupt("empty row");
    const std::string& tag = row[0];
    if (tag == "fingerprint") {
      if (row.size() != 2 || row[1].size() != 16) corrupt("malformed fingerprint");
      std::uint64_t recorded = 0;
      for (char c : row[1]) {
        recorded <<= 4;
        if (c >= '0' && c <= '9') {
          recorded |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          recorded |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
          corrupt("malformed fingerprint");
        }
      }
      if (expected_fingerprint != kAnyFingerprint &&
          recorded != expected_fingerprint) {
        corrupt("was written by a build with different options "
                "(world/seed/streaming mismatch); refusing to resume");
      }
      saw_fingerprint = true;
    } else if (tag == "rounds_run") {
      cp.rounds_run = parse_count(row, 1, "rounds_run");
      saw_rounds = true;
    } else if (tag == "finished") {
      if (row.size() != 2 || (row[1] != "0" && row[1] != "1")) {
        corrupt("malformed finished flag");
      }
      cp.finished = row[1] == "1";
    } else if (tag == "effort") {
      cp.oracle_effort = parse_count(row, 1, "effort");
    } else if (tag == "round") {
      if (row.size() != 5) corrupt("malformed round row");
      core::RoundStats stats;
      stats.round = parse_count(row, 1, "round");
      stats.pool_size = parse_count(row, 2, "pool_size");
      stats.candidates = parse_count(row, 3, "candidates");
      stats.verified_security = parse_count(row, 4, "verified_security");
      stats.ratio = stats.candidates == 0
                        ? 0.0
                        : static_cast<double>(stats.verified_security) /
                              static_cast<double>(stats.candidates);
      cp.history.push_back(stats);
    } else if (tag == "security" || tag == "nonsecurity" || tag == "pool") {
      if (row.size() != 2 || row[1].empty()) corrupt("malformed commit row");
      if (tag == "security") {
        cp.wild_security.push_back(row[1]);
      } else if (tag == "nonsecurity") {
        cp.nonsecurity.push_back(row[1]);
      } else {
        cp.pool.push_back(row[1]);
      }
    } else {
      corrupt("unknown row tag '" + tag + "'");
    }
  }
  if (!saw_fingerprint || !saw_rounds) corrupt("missing required rows");
  if (cp.history.size() != cp.rounds_run) {
    corrupt("round history does not match rounds_run");
  }
  return cp;
}

core::PatchDb build_with_checkpoints(const core::BuildOptions& options) {
  if (options.checkpoint_dir.empty()) return core::build_patchdb(options);
  const fs::path dir = options.checkpoint_dir;
  fs::create_directories(dir);
  const std::uint64_t fingerprint = build_fingerprint(options);

  core::BuildHooks hooks;
  hooks.before_rounds = [&options, &dir, fingerprint](
                            core::AugmentationLoop& loop,
                            corpus::World& world) -> bool {
    if (!options.resume) return false;
    if (!fs::exists(checkpoint_path(dir))) {
      util::log_info() << "store: no checkpoint in " << dir.string()
                       << ", starting fresh";
      return false;
    }
    const core::LoopCheckpoint cp = read_checkpoint(dir, fingerprint);
    core::CommitIndex by_commit;
    by_commit.reserve(world.wild.size());
    for (const corpus::CommitRecord& r : world.wild) {
      by_commit.emplace(r.patch.commit, &r);
    }
    loop.restore(cp, by_commit);
    world.oracle.set_effort(cp.oracle_effort);
    PATCHDB_COUNTER_ADD("store.resumes", 1);
    util::log_info() << "store: resumed from " << checkpoint_path(dir).string()
                     << " at round " << cp.rounds_run << " ("
                     << cp.wild_security.size() << " wild finds, "
                     << cp.pool.size() << " pool remaining)";
    return true;
  };
  hooks.after_round = [&dir, fingerprint](const core::AugmentationLoop& loop,
                                          const core::RoundStats&) {
    write_checkpoint(dir, loop.checkpoint(), fingerprint);
  };
  return core::build_patchdb(options, hooks);
}

}  // namespace patchdb::store
