#include "store/export.h"

#include <fstream>
#include <stdexcept>

#include "diff/parse.h"
#include "diff/render.h"
#include "feature/features.h"
#include "util/strings.h"
#include "util/table.h"

namespace patchdb::store {

namespace fs = std::filesystem;

namespace {

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("store: cannot open " + path.string());
  out << content;
  if (!out) throw std::runtime_error("store: short write to " + path.string());
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("store: cannot read " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

std::string manifest_row(const std::string& commit, const std::string& component,
                         bool is_security, int type, const std::string& repo,
                         const std::string& origin, int variant,
                         int modified_after) {
  std::string row;
  row += commit;
  row += ',';
  row += component;
  row += ',';
  row += is_security ? "security" : "nonsecurity";
  row += ',';
  row += std::to_string(type);
  row += ',';
  row += repo;
  row += ',';
  row += origin;
  row += ',';
  row += std::to_string(variant);
  row += ',';
  row += std::to_string(modified_after);
  row += '\n';
  return row;
}

void export_records(const std::vector<corpus::CommitRecord>& records,
                    const char* component, const fs::path& root,
                    std::string& manifest, std::string& features,
                    ExportStats& stats) {
  const fs::path dir = root / component;
  fs::create_directories(dir);
  for (const corpus::CommitRecord& record : records) {
    write_file(dir / (record.patch.commit + ".patch"),
               diff::render_patch(record.patch));
    manifest += manifest_row(record.patch.commit, component,
                             record.truth.is_security,
                             static_cast<int>(record.truth.type), record.repo,
                             "", 0, 0);
    const feature::FeatureVector v = feature::extract(record.patch);
    features += record.patch.commit;
    for (double value : v) {
      features += ',';
      features += util::format_double(value, 6);
    }
    features += '\n';
    ++stats.feature_rows;
    ++stats.patches_written;
  }
}

}  // namespace

std::string manifest_header() {
  return "commit,component,label,type,repo,origin,variant,modified_after\n";
}

ExportStats export_patchdb(const core::PatchDb& db, const fs::path& root) {
  ExportStats stats;
  stats.root = root;
  fs::create_directories(root);

  std::string manifest = manifest_header();
  std::string features = "commit";
  for (std::string_view name : feature::feature_names()) {
    features += ',';
    features += name;
  }
  features += '\n';

  export_records(db.nvd_security, "nvd", root, manifest, features, stats);
  export_records(db.wild_security, "wild", root, manifest, features, stats);
  export_records(db.nonsecurity, "nonsecurity", root, manifest, features, stats);

  const fs::path synth_dir = root / "synthetic";
  fs::create_directories(synth_dir);
  for (const synth::SyntheticPatch& s : db.synthetic) {
    write_file(synth_dir / (s.patch.commit + ".patch"),
               diff::render_patch(s.patch));
    manifest += manifest_row(s.patch.commit, "synthetic", s.truth.is_security,
                             static_cast<int>(s.truth.type), "", s.origin_commit,
                             static_cast<int>(s.variant), s.modified_after ? 1 : 0);
    ++stats.patches_written;
  }

  write_file(root / "manifest.csv", manifest);
  write_file(root / "features.csv", features);
  return stats;
}

LoadedPatchDb load_patchdb(const fs::path& root) {
  const std::string manifest = read_file(root / "manifest.csv");
  const auto lines = util::split_lines(manifest);
  if (lines.empty() || std::string(lines[0]) + "\n" != manifest_header()) {
    throw std::runtime_error("store: bad manifest header in " + root.string());
  }

  LoadedPatchDb db;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = util::split(lines[i], ',');
    if (fields.size() != 8) {
      throw std::runtime_error("store: malformed manifest row " +
                               std::to_string(i + 1));
    }
    const std::string commit(fields[0]);
    const std::string component(fields[1]);
    const bool is_security = fields[2] == "security";
    const int type = std::atoi(std::string(fields[3]).c_str());

    const fs::path patch_path = root / component / (commit + ".patch");
    diff::Patch patch = diff::parse_patch(read_file(patch_path));

    if (component == "synthetic") {
      synth::SyntheticPatch s;
      s.patch = std::move(patch);
      s.truth.is_security = is_security;
      s.truth.type = static_cast<corpus::PatchType>(type);
      s.origin_commit = std::string(fields[5]);
      s.variant = static_cast<synth::IfVariant>(
          std::atoi(std::string(fields[6]).c_str()));
      s.modified_after = fields[7] == "1";
      db.synthetic.push_back(std::move(s));
      continue;
    }

    corpus::CommitRecord record;
    record.patch = std::move(patch);
    record.truth.is_security = is_security;
    record.truth.type = static_cast<corpus::PatchType>(type);
    record.repo = std::string(fields[4]);
    if (component == "nvd") {
      db.nvd_security.push_back(std::move(record));
    } else if (component == "wild") {
      db.wild_security.push_back(std::move(record));
    } else if (component == "nonsecurity") {
      db.nonsecurity.push_back(std::move(record));
    } else {
      throw std::runtime_error("store: unknown component '" + component + "'");
    }
  }
  return db;
}

}  // namespace patchdb::store
