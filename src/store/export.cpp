#include "store/export.h"

#include <stdexcept>
#include <unordered_map>

#include "diff/parse.h"
#include "diff/render.h"
#include "feature/features.h"
#include "obs/metrics.h"
#include "store/csv.h"
#include "store/io.h"
#include "util/hash.h"
#include "util/strings.h"
#include "util/table.h"

namespace patchdb::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kVersionLine = "#patchdb.store.v2";
constexpr std::size_t kManifestFields = 9;

std::string manifest_row(const std::string& commit, const std::string& component,
                         bool is_security, int type, const std::string& repo,
                         const std::string& origin, int variant,
                         int modified_after, std::uint64_t checksum) {
  std::string row;
  row += csv_escape(commit);
  row += ',';
  row += csv_escape(component);
  row += ',';
  row += is_security ? "security" : "nonsecurity";
  row += ',';
  row += std::to_string(type);
  row += ',';
  row += csv_escape(repo);
  row += ',';
  row += csv_escape(origin);
  row += ',';
  row += std::to_string(variant);
  row += ',';
  row += std::to_string(modified_after);
  row += ',';
  row += util::to_hex(checksum);
  row += '\n';
  return row;
}

/// Write one patch file (atomically) and return its content checksum.
std::uint64_t write_patch_file(const fs::path& dir, const std::string& commit,
                               const diff::Patch& patch) {
  const std::string content = diff::render_patch(patch);
  atomic_write_file(dir / (commit + ".patch"), content);
  return util::fnv1a64(content);
}

void export_records(const std::vector<corpus::CommitRecord>& records,
                    const char* component, const fs::path& root,
                    std::string& manifest, std::string& features,
                    ExportStats& stats) {
  const fs::path dir = root / component;
  fs::create_directories(dir);
  for (const corpus::CommitRecord& record : records) {
    const std::uint64_t checksum =
        write_patch_file(dir, record.patch.commit, record.patch);
    manifest += manifest_row(record.patch.commit, component,
                             record.truth.is_security,
                             static_cast<int>(record.truth.type), record.repo,
                             "", 0, 0, checksum);
    const feature::FeatureVector v = feature::extract(record.patch);
    features += record.patch.commit;
    for (double value : v) {
      features += ',';
      features += util::format_double(value, 6);
    }
    features += '\n';
    ++stats.feature_rows;
    ++stats.patches_written;
  }
}

[[noreturn]] void malformed(std::size_t row, const std::string& why) {
  throw std::runtime_error("store: malformed manifest row " +
                           std::to_string(row) + ": " + why);
}

/// Commits double as file names; restrict to the hex ids the pipeline
/// emits so a tampered manifest cannot escape the dataset directory.
void check_commit_field(std::string_view commit, std::size_t row) {
  if (commit.empty()) malformed(row, "empty commit");
  for (char c : commit) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) malformed(row, "commit is not lowercase hex");
  }
}

corpus::PatchType parse_type_field(std::string_view text, std::size_t row) {
  const long long value = parse_int_field(text, 1000, "type");
  const bool security = value >= 1 && value <= static_cast<long long>(
                                                  corpus::kSecurityTypeCount);
  const bool nonsecurity =
      value >= static_cast<long long>(corpus::PatchType::kNewFeature) &&
      value <= static_cast<long long>(corpus::PatchType::kDefensive);
  if (!security && !nonsecurity) {
    malformed(row, "unknown patch type " + std::string(text));
  }
  return static_cast<corpus::PatchType>(value);
}

std::uint64_t parse_checksum_field(std::string_view text, std::size_t row) {
  if (text.size() != 16) malformed(row, "malformed checksum");
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      malformed(row, "malformed checksum");
    }
  }
  return value;
}

}  // namespace

std::string_view store_version_line() { return kVersionLine; }

std::string manifest_header() {
  return "commit,component,label,type,repo,origin,variant,modified_after,checksum\n";
}

ExportStats export_patchdb(const core::PatchDb& db, const fs::path& root) {
  ExportStats stats;
  stats.root = root;
  fs::create_directories(root);

  std::string manifest(kVersionLine);
  manifest += '\n';
  manifest += manifest_header();

  std::string features(kVersionLine);
  features += '\n';
  features += "commit";
  for (std::string_view name : feature::feature_names()) {
    features += ',';
    features += name;
  }
  features += '\n';

  export_records(db.nvd_security, "nvd", root, manifest, features, stats);
  export_records(db.wild_security, "wild", root, manifest, features, stats);
  export_records(db.nonsecurity, "nonsecurity", root, manifest, features, stats);

  const fs::path synth_dir = root / "synthetic";
  fs::create_directories(synth_dir);
  for (const synth::SyntheticPatch& s : db.synthetic) {
    const std::uint64_t checksum =
        write_patch_file(synth_dir, s.patch.commit, s.patch);
    manifest += manifest_row(s.patch.commit, "synthetic", s.truth.is_security,
                             static_cast<int>(s.truth.type), "", s.origin_commit,
                             static_cast<int>(s.variant), s.modified_after ? 1 : 0,
                             checksum);
    ++stats.patches_written;
  }

  // The manifest is the commit point: it lands last, atomically, so an
  // interrupted export never publishes a manifest naming absent files.
  atomic_write_file(root / "features.csv", with_checksum_trailer(std::move(features)));
  atomic_write_file(root / "manifest.csv", with_checksum_trailer(std::move(manifest)));
  return stats;
}

LoadedPatchDb load_patchdb(const fs::path& root) {
  const std::string sealed = read_file(root / "manifest.csv");
  const std::string_view body = strip_checksum_trailer(sealed, "manifest.csv");
  if (!util::starts_with(body, kVersionLine) ||
      body.size() <= kVersionLine.size() || body[kVersionLine.size()] != '\n') {
    throw std::runtime_error("store: unsupported manifest version in " +
                             root.string() + " (expected " +
                             std::string(kVersionLine) + ")");
  }
  const auto rows = csv_parse(body.substr(kVersionLine.size() + 1));
  if (rows.empty() ||
      util::join(rows[0], ",") + "\n" != manifest_header()) {
    throw std::runtime_error("store: bad manifest header in " + root.string());
  }

  LoadedPatchDb db;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& fields = rows[i];
    // Row numbers in errors count the version line and the header.
    const std::size_t row_no = i + 2;
    if (fields.size() != kManifestFields) {
      malformed(row_no, "expected " + std::to_string(kManifestFields) +
                            " fields, got " + std::to_string(fields.size()));
    }
    const std::string& commit = fields[0];
    check_commit_field(commit, row_no);
    const std::string& component = fields[1];
    if (component != "nvd" && component != "wild" && component != "nonsecurity" &&
        component != "synthetic") {
      throw std::runtime_error("store: unknown component '" + component + "'");
    }
    bool is_security = false;
    if (fields[2] == "security") {
      is_security = true;
    } else if (fields[2] != "nonsecurity") {
      malformed(row_no, "unknown label '" + fields[2] + "'");
    }
    const corpus::PatchType type = parse_type_field(fields[3], row_no);
    const long long variant = parse_int_field(fields[6], 1000, "variant");
    if (fields[7] != "0" && fields[7] != "1") {
      malformed(row_no, "modified_after must be 0 or 1");
    }
    const std::uint64_t recorded_checksum = parse_checksum_field(fields[8], row_no);

    const fs::path patch_path = root / component / (commit + ".patch");
    const std::string content = read_file(patch_path);
    if (util::fnv1a64(content) != recorded_checksum) {
      PATCHDB_COUNTER_ADD("store.checksum_failures", 1);
      throw std::runtime_error("store: checksum mismatch for " +
                               patch_path.string() +
                               " (corrupted or truncated patch file)");
    }
    diff::Patch patch = diff::parse_patch(content);

    if (component == "synthetic") {
      if (variant < 1 || variant > static_cast<long long>(synth::kVariantCount)) {
        malformed(row_no, "unknown synthesis variant " + fields[6]);
      }
      synth::SyntheticPatch s;
      s.patch = std::move(patch);
      s.truth.is_security = is_security;
      s.truth.type = type;
      s.origin_commit = fields[5];
      s.variant = static_cast<synth::IfVariant>(variant);
      s.modified_after = fields[7] == "1";
      db.synthetic.push_back(std::move(s));
      continue;
    }
    if (variant != 0) malformed(row_no, "natural patch with nonzero variant");

    corpus::CommitRecord record;
    record.patch = std::move(patch);
    record.truth.is_security = is_security;
    record.truth.type = type;
    record.repo = fields[4];
    if (component == "nvd") {
      db.nvd_security.push_back(std::move(record));
    } else if (component == "wild") {
      db.wild_security.push_back(std::move(record));
    } else {
      db.nonsecurity.push_back(std::move(record));
    }
  }
  return db;
}

}  // namespace patchdb::store
