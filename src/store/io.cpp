#include "store/io.h"

#include <atomic>
#include <fstream>
#include <mutex>
#include <system_error>

#include "obs/metrics.h"
#include "util/hash.h"

namespace patchdb::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kTrailerTag = "#fnv1a64 ";
constexpr std::size_t kHexDigits = 16;
// Tag + 16 hex digits + newline.
constexpr std::size_t kTrailerSize = kTrailerTag.size() + kHexDigits + 1;

std::mutex g_fault_mutex;
FaultPlan g_fault_plan;
std::atomic<std::size_t> g_write_index{0};

void raw_write(const fs::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("store: cannot open " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw std::runtime_error("store: short write to " + path.string());
}

bool parse_hex64(std::string_view text, std::uint64_t& out) {
  if (text.size() != kHexDigits) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = value;
  return true;
}

}  // namespace

void set_fault_plan(const FaultPlan& plan) noexcept {
  std::lock_guard lock(g_fault_mutex);
  g_fault_plan = plan;
  g_write_index.store(0, std::memory_order_relaxed);
}

void clear_fault_plan() noexcept {
  std::lock_guard lock(g_fault_mutex);
  g_fault_plan = FaultPlan{};
  g_write_index.store(0, std::memory_order_relaxed);
}

std::size_t fault_write_count() noexcept {
  return g_write_index.load(std::memory_order_relaxed);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("store: cannot read " + path.string());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void atomic_write_file(const fs::path& path, std::string_view content) {
  const std::size_t index = g_write_index.fetch_add(1, std::memory_order_relaxed);
  FaultPlan plan;
  {
    std::lock_guard lock(g_fault_mutex);
    plan = g_fault_plan;
  }
  if (index == plan.fail_write) {
    if (plan.truncate) {
      // A torn, non-atomic writer: half the bytes land at the final
      // path. Readers must reject this via the checksum trailer.
      raw_write(path, content.substr(0, content.size() / 2));
    }
    throw FaultInjected("store: injected fault at write " +
                        std::to_string(index) + " (" + path.string() + ")");
  }

  fs::path tmp = path;
  tmp += ".tmp";
  raw_write(tmp, content);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("store: cannot rename into " + path.string());
  }
  PATCHDB_COUNTER_ADD("store.writes", 1);
  PATCHDB_COUNTER_ADD("store.bytes", content.size());
}

std::string with_checksum_trailer(std::string body) {
  if (body.empty() || body.back() != '\n') body += '\n';
  const std::uint64_t checksum = util::fnv1a64(body);
  body += kTrailerTag;
  body += util::to_hex(checksum);
  body += '\n';
  return body;
}

std::string_view strip_checksum_trailer(std::string_view sealed,
                                        const std::string& what) {
  const auto fail = [&what](const char* why) -> std::string_view {
    PATCHDB_COUNTER_ADD("store.checksum_failures", 1);
    throw std::runtime_error("store: " + what + ": " + why);
  };
  if (sealed.size() < kTrailerSize + 1 || sealed.back() != '\n') {
    return fail("missing checksum trailer");
  }
  const std::string_view trailer = sealed.substr(sealed.size() - kTrailerSize);
  if (trailer.substr(0, kTrailerTag.size()) != kTrailerTag) {
    return fail("missing checksum trailer");
  }
  std::uint64_t recorded = 0;
  if (!parse_hex64(trailer.substr(kTrailerTag.size(), kHexDigits), recorded)) {
    return fail("malformed checksum trailer");
  }
  const std::string_view body = sealed.substr(0, sealed.size() - kTrailerSize);
  if (body.empty() || body.back() != '\n') {
    return fail("checksum trailer is not on its own line");
  }
  if (util::fnv1a64(body) != recorded) {
    return fail("checksum mismatch (corrupted or truncated file)");
  }
  return body;
}

}  // namespace patchdb::store
