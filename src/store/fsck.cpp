#include "store/fsck.h"

#include <set>
#include <stdexcept>
#include <string_view>

#include "corpus/taxonomy.h"
#include "store/checkpoint.h"
#include "store/csv.h"
#include "store/export.h"
#include "store/io.h"
#include "synth/variants.h"
#include "util/hash.h"
#include "util/strings.h"

namespace patchdb::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kComponents[] = {"nvd", "wild", "nonsecurity",
                                            "synthetic"};

bool is_hex16(std::string_view text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = value;
  return true;
}

bool is_lower_hex(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// Strip trailer + version line of a sealed store document; returns the
/// CSV payload or records an error.
bool unseal(const std::string& sealed, std::string_view version_line,
            const std::string& name, FsckReport& report, std::string_view& csv) {
  std::string_view body;
  try {
    body = strip_checksum_trailer(sealed, name);
  } catch (const std::exception& e) {
    report.errors.push_back(e.what());
    return false;
  }
  if (!util::starts_with(body, version_line) ||
      body.size() <= version_line.size() ||
      body[version_line.size()] != '\n') {
    report.errors.push_back(name + ": unsupported or missing version line");
    return false;
  }
  csv = body.substr(version_line.size() + 1);
  return true;
}

}  // namespace

FsckReport fsck_dataset(const fs::path& root) {
  FsckReport report;
  report.root = root;

  std::string sealed;
  try {
    sealed = read_file(root / "manifest.csv");
  } catch (const std::exception& e) {
    report.errors.push_back(e.what());
    return report;
  }
  ++report.files_checked;
  report.bytes_checked += sealed.size();

  std::string_view csv;
  if (!unseal(sealed, store_version_line(), "manifest.csv", report, csv)) {
    return report;
  }
  std::vector<std::vector<std::string>> rows;
  try {
    rows = csv_parse(csv);
  } catch (const std::exception& e) {
    report.errors.push_back(std::string("manifest.csv: ") + e.what());
    return report;
  }
  if (rows.empty() || util::join(rows[0], ",") + "\n" != manifest_header()) {
    report.errors.push_back("manifest.csv: bad header");
    return report;
  }

  std::set<std::pair<std::string, std::string>> listed;  // (component, commit)
  std::size_t natural_rows = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& fields = rows[i];
    const std::string where = "manifest.csv row " + std::to_string(i + 2);
    ++report.manifest_rows;
    if (fields.size() != 9) {
      report.errors.push_back(where + ": expected 9 fields, got " +
                              std::to_string(fields.size()));
      continue;
    }
    const std::string& commit = fields[0];
    const std::string& component = fields[1];
    bool row_ok = true;
    if (!is_lower_hex(commit)) {
      report.errors.push_back(where + ": commit is not lowercase hex");
      row_ok = false;
    }
    bool component_ok = false;
    for (std::string_view known : kComponents) component_ok |= component == known;
    if (!component_ok) {
      report.errors.push_back(where + ": unknown component '" + component + "'");
      row_ok = false;
    }
    if (fields[2] != "security" && fields[2] != "nonsecurity") {
      report.errors.push_back(where + ": unknown label '" + fields[2] + "'");
    }
    try {
      const long long type = parse_int_field(fields[3], 1000, "type");
      const bool known =
          (type >= 1 && type <= static_cast<long long>(corpus::kSecurityTypeCount)) ||
          (type >= static_cast<long long>(corpus::PatchType::kNewFeature) &&
           type <= static_cast<long long>(corpus::PatchType::kDefensive));
      if (!known) {
        report.errors.push_back(where + ": unknown patch type " + fields[3]);
      }
      const long long variant = parse_int_field(fields[6], 1000, "variant");
      if (component == "synthetic"
              ? (variant < 1 || variant > static_cast<long long>(synth::kVariantCount))
              : variant != 0) {
        report.errors.push_back(where + ": bad variant " + fields[6]);
      }
    } catch (const std::exception& e) {
      report.errors.push_back(where + ": " + e.what());
    }
    if (fields[7] != "0" && fields[7] != "1") {
      report.errors.push_back(where + ": modified_after must be 0 or 1");
    }
    std::uint64_t recorded = 0;
    if (!is_hex16(fields[8], recorded)) {
      report.errors.push_back(where + ": malformed checksum");
      row_ok = false;
    }
    if (!row_ok) continue;
    if (component != "synthetic") ++natural_rows;
    if (!listed.emplace(component, commit).second) {
      report.errors.push_back(where + ": duplicate entry " + component + "/" +
                              commit);
      continue;
    }

    const fs::path patch_path = root / component / (commit + ".patch");
    std::string content;
    try {
      content = read_file(patch_path);
    } catch (const std::exception& e) {
      report.errors.push_back(e.what());
      continue;
    }
    ++report.files_checked;
    report.bytes_checked += content.size();
    if (util::fnv1a64(content) != recorded) {
      report.errors.push_back(where + ": checksum mismatch for " +
                              patch_path.string() +
                              " (corrupted or truncated patch file)");
    }
  }

  // Orphans: patch files on disk the manifest does not describe.
  for (std::string_view component : kComponents) {
    const fs::path dir = root / component;
    if (!fs::is_directory(dir)) continue;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      const fs::path& p = entry.path();
      if (p.extension() != ".patch") continue;
      if (!listed.count({std::string(component), p.stem().string()})) {
        report.errors.push_back("orphaned patch file " + p.string());
      }
    }
  }

  // features.csv: sealed, versioned, one row per natural patch.
  std::string features;
  try {
    features = read_file(root / "features.csv");
  } catch (const std::exception& e) {
    report.errors.push_back(e.what());
    return report;
  }
  ++report.files_checked;
  report.bytes_checked += features.size();
  std::string_view features_csv;
  if (unseal(features, store_version_line(), "features.csv", report,
             features_csv)) {
    std::size_t feature_rows = 0;
    for (std::string_view line : util::split_lines(features_csv)) {
      if (!line.empty()) ++feature_rows;
    }
    if (feature_rows != natural_rows + 1) {  // + header
      report.errors.push_back(
          "features.csv: expected " + std::to_string(natural_rows) +
          " feature rows, found " +
          std::to_string(feature_rows == 0 ? 0 : feature_rows - 1));
    }
  }
  return report;
}

FsckReport fsck_checkpoint_dir(const fs::path& dir) {
  FsckReport report;
  report.root = dir;
  try {
    const std::string sealed = read_file(checkpoint_path(dir));
    ++report.files_checked;
    report.bytes_checked += sealed.size();
    const core::LoopCheckpoint cp = read_checkpoint(dir, kAnyFingerprint);
    report.manifest_rows = cp.wild_security.size() + cp.nonsecurity.size() +
                           cp.pool.size();
  } catch (const std::exception& e) {
    report.errors.push_back(e.what());
  }
  return report;
}

FsckReport fsck(const fs::path& path) {
  const bool has_manifest = fs::exists(path / "manifest.csv");
  const bool has_checkpoint = fs::exists(checkpoint_path(path));
  if (!has_manifest && !has_checkpoint) {
    FsckReport report;
    report.root = path;
    report.errors.push_back("fsck: " + path.string() +
                            " holds neither a dataset (manifest.csv) nor a "
                            "checkpoint (checkpoint.csv)");
    return report;
  }
  FsckReport report;
  if (has_manifest) report = fsck_dataset(path);
  if (has_checkpoint) {
    FsckReport cp = fsck_checkpoint_dir(path);
    report.root = path;
    report.files_checked += cp.files_checked;
    report.bytes_checked += cp.bytes_checked;
    report.manifest_rows += cp.manifest_rows;
    report.errors.insert(report.errors.end(), cp.errors.begin(), cp.errors.end());
  }
  return report;
}

}  // namespace patchdb::store
