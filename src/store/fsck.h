// Offline integrity verification for exported datasets and checkpoint
// directories — the `patchdb fsck` subcommand. Unlike load_patchdb
// (which throws at the first problem), fsck walks the whole tree and
// collects every issue: manifest/features trailer checksums, strict row
// parsing, per-patch content checksums, missing and orphaned patch
// files, feature-row counts, and checkpoint validity.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace patchdb::store {

struct FsckReport {
  std::filesystem::path root;
  std::size_t files_checked = 0;
  std::size_t bytes_checked = 0;
  std::size_t manifest_rows = 0;
  std::vector<std::string> errors;
  bool ok() const noexcept { return errors.empty(); }
};

/// Verify an exported dataset directory (manifest.csv present).
FsckReport fsck_dataset(const std::filesystem::path& root);

/// Verify a checkpoint directory (checkpoint.csv present).
FsckReport fsck_checkpoint_dir(const std::filesystem::path& dir);

/// Dispatch on the directory's contents: dataset when manifest.csv is
/// present, checkpoint when checkpoint.csv is; both when both are.
/// A directory with neither yields a single error.
FsckReport fsck(const std::filesystem::path& path);

}  // namespace patchdb::store
