#include "analysis/cfg.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace patchdb::analysis {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Token index of the bracket matching the opener at `open_index`, or
/// kNpos when the stream ends unbalanced.
std::size_t match_bracket(std::span<const lang::Token> tokens, std::size_t open_index,
                          std::string_view open, std::string_view close) {
  std::size_t depth = 0;
  for (std::size_t i = open_index; i < tokens.size(); ++i) {
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

/// Builds one Cfg by structured recursion over a token span. Break and
/// continue targets live on explicit stacks; goto edges are resolved
/// after the walk from the collected label table.
class CfgBuilder {
 public:
  explicit CfgBuilder(std::string function_name) {
    cfg_.function = std::move(function_name);
    cfg_.blocks.resize(2);
    cfg_.blocks[Cfg::kEntry].id = Cfg::kEntry;
    cfg_.blocks[Cfg::kExit].id = Cfg::kExit;
    cur_ = new_block();
    add_edge(Cfg::kEntry, cur_);
  }

  Cfg build(std::span<const lang::Token> tokens) {
    // Strip comments/preprocessor and an outermost brace pair, if any.
    std::vector<lang::Token> body;
    body.reserve(tokens.size());
    for (const lang::Token& t : tokens) {
      if (t.kind == lang::TokenKind::kComment ||
          t.kind == lang::TokenKind::kPreprocessor) {
        continue;
      }
      body.push_back(t);
    }
    std::span<const lang::Token> view = body;
    if (!view.empty() && view.front().text == "{") {
      const std::size_t close = match_bracket(view, 0, "{", "}");
      view = close == kNpos ? view.subspan(1) : view.subspan(1, close - 1);
    }
    parse_sequence(view, 0, view.size());
    if (!terminated_) add_edge(cur_, Cfg::kExit);
    resolve_gotos();
    seal();
    return std::move(cfg_);
  }

 private:
  std::size_t new_block() {
    const std::size_t id = cfg_.blocks.size();
    cfg_.blocks.emplace_back();
    cfg_.blocks.back().id = id;
    return id;
  }

  void add_edge(std::size_t from, std::size_t to) {
    std::vector<std::size_t>& succs = cfg_.blocks[from].succs;
    if (std::find(succs.begin(), succs.end(), to) == succs.end()) succs.push_back(to);
  }

  void append(std::span<const lang::Token> toks, std::size_t first, std::size_t last,
              bool is_condition) {
    if (first >= last) return;
    Statement stmt;
    stmt.tokens.assign(toks.begin() + static_cast<std::ptrdiff_t>(first),
                       toks.begin() + static_cast<std::ptrdiff_t>(last));
    stmt.line = stmt.tokens.front().line;
    stmt.is_condition = is_condition;
    cfg_.blocks[cur_].statements.push_back(std::move(stmt));
  }

  /// After a return/goto/break/continue the walk continues in a fresh
  /// block that has no predecessors (unreachable until a label lands).
  void start_dead_block() {
    cur_ = new_block();
    terminated_ = false;
  }

  void parse_sequence(std::span<const lang::Token> toks, std::size_t begin,
                      std::size_t end) {
    std::size_t i = begin;
    while (i < end && i < toks.size()) {
      const std::size_t next = parse_statement(toks, i, end);
      i = next > i ? next : i + 1;  // always make progress
    }
  }

  /// Parse one statement starting at `i`; returns the index just past it.
  std::size_t parse_statement(std::span<const lang::Token> toks, std::size_t i,
                              std::size_t end) {
    const lang::Token& t = toks[i];
    if (t.text == ";") return i + 1;
    if (t.text == "{") {
      std::size_t close = match_bracket(toks.subspan(0, end), i, "{", "}");
      if (close == kNpos) close = end;
      parse_sequence(toks, i + 1, close);
      return close + 1;
    }
    if (t.kind == lang::TokenKind::kKeyword) {
      if (t.text == "if") return parse_if(toks, i, end);
      if (t.text == "while") return parse_while(toks, i, end);
      if (t.text == "for") return parse_for(toks, i, end);
      if (t.text == "do") return parse_do(toks, i, end);
      if (t.text == "switch") return parse_switch(toks, i, end);
      if (t.text == "return") {
        const std::size_t stop = find_semicolon(toks, i, end);
        append(toks, i, stop, false);
        add_edge(cur_, Cfg::kExit);
        terminated_ = true;
        start_dead_block();
        return stop + 1;
      }
      if (t.text == "break" || t.text == "continue") {
        append(toks, i, i + 1, false);
        const std::vector<std::size_t>& stack =
            t.text == "break" ? break_targets_ : continue_targets_;
        add_edge(cur_, stack.empty() ? Cfg::kExit : stack.back());
        terminated_ = true;
        start_dead_block();
        return find_semicolon(toks, i, end) + 1;
      }
      if (t.text == "goto") {
        const std::size_t stop = find_semicolon(toks, i, end);
        append(toks, i, stop, false);
        if (i + 1 < stop) pending_gotos_.emplace_back(toks[i + 1].text, cur_);
        terminated_ = true;
        start_dead_block();
        return stop + 1;
      }
      if (t.text == "else") {
        // A stray `else` (its `if` was outside the fragment): treat the
        // body as a plain statement.
        return i + 1;
      }
    }
    // Label: `ident :` (not `::`, not `? :`). Starts a new block that is
    // also a goto target.
    if (t.kind == lang::TokenKind::kIdentifier && i + 1 < end &&
        toks[i + 1].text == ":") {
      const std::size_t label_block = new_block();
      if (!terminated_) add_edge(cur_, label_block);
      cur_ = label_block;
      terminated_ = false;
      labels_[t.text] = label_block;
      return i + 2;
    }
    // Expression statement: consume up to the `;` at bracket depth 0.
    const std::size_t stop = find_semicolon(toks, i, end);
    append(toks, i, stop, false);
    return stop + 1;
  }

  std::size_t parse_if(std::span<const lang::Token> toks, std::size_t i,
                       std::size_t end) {
    std::size_t open = i + 1;
    if (open < end && toks[open].text == "constexpr") ++open;
    if (open >= end || toks[open].text != "(") {
      return i + 1;  // malformed; skip the keyword
    }
    std::size_t close = match_bracket(toks.subspan(0, end), open, "(", ")");
    if (close == kNpos) close = end - 1;
    append(toks, i, close + 1, /*is_condition=*/true);
    const std::size_t cond_block = cur_;
    const bool cond_terminated = terminated_;

    const std::size_t then_block = new_block();
    if (!cond_terminated) add_edge(cond_block, then_block);
    cur_ = then_block;
    terminated_ = false;
    std::size_t next = close + 1 < end ? parse_statement(toks, close + 1, end) : end;
    const std::size_t then_end = cur_;
    const bool then_terminated = terminated_;

    std::size_t else_end = cond_block;
    bool else_terminated = cond_terminated;
    bool has_else = false;
    if (next < end && toks[next].text == "else") {
      has_else = true;
      const std::size_t else_block = new_block();
      if (!cond_terminated) add_edge(cond_block, else_block);
      cur_ = else_block;
      terminated_ = false;
      next = next + 1 < end ? parse_statement(toks, next + 1, end) : end;
      else_end = cur_;
      else_terminated = terminated_;
    }

    const std::size_t join = new_block();
    if (!then_terminated) add_edge(then_end, join);
    if (has_else) {
      if (!else_terminated) add_edge(else_end, join);
    } else if (!cond_terminated) {
      add_edge(cond_block, join);
    }
    cur_ = join;
    terminated_ = false;
    return next;
  }

  std::size_t parse_while(std::span<const lang::Token> toks, std::size_t i,
                          std::size_t end) {
    const std::size_t open = i + 1;
    if (open >= end || toks[open].text != "(") return i + 1;
    std::size_t close = match_bracket(toks.subspan(0, end), open, "(", ")");
    if (close == kNpos) close = end - 1;

    const std::size_t header = new_block();
    if (!terminated_) add_edge(cur_, header);
    cur_ = header;
    terminated_ = false;
    append(toks, i, close + 1, /*is_condition=*/true);

    const std::size_t body = new_block();
    const std::size_t exit = new_block();
    add_edge(header, body);
    add_edge(header, exit);

    break_targets_.push_back(exit);
    continue_targets_.push_back(header);
    cur_ = body;
    const std::size_t next = close + 1 < end ? parse_statement(toks, close + 1, end) : end;
    if (!terminated_) add_edge(cur_, header);  // back edge
    break_targets_.pop_back();
    continue_targets_.pop_back();

    cur_ = exit;
    terminated_ = false;
    return next;
  }

  std::size_t parse_for(std::span<const lang::Token> toks, std::size_t i,
                        std::size_t end) {
    const std::size_t open = i + 1;
    if (open >= end || toks[open].text != "(") return i + 1;
    std::size_t close = match_bracket(toks.subspan(0, end), open, "(", ")");
    if (close == kNpos) close = end - 1;

    // Split `init ; cond ; step` at paren depth 1.
    std::size_t first_semi = kNpos;
    std::size_t second_semi = kNpos;
    std::size_t depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      const std::string& text = toks[j].text;
      if (text == "(" || text == "[") ++depth;
      else if (text == ")" || text == "]") --depth;
      else if (text == ";" && depth == 1) {
        if (first_semi == kNpos) first_semi = j;
        else if (second_semi == kNpos) second_semi = j;
      }
    }

    // Init runs in the current block.
    if (first_semi != kNpos) append(toks, open + 1, first_semi, false);

    const std::size_t header = new_block();
    if (!terminated_) add_edge(cur_, header);
    cur_ = header;
    terminated_ = false;
    const std::size_t cond_begin = first_semi == kNpos ? open + 1 : first_semi + 1;
    const std::size_t cond_end = second_semi == kNpos ? close : second_semi;
    const bool has_cond = cond_begin < cond_end;
    if (has_cond) append(toks, cond_begin, cond_end, /*is_condition=*/true);

    const std::size_t body = new_block();
    const std::size_t exit = new_block();
    add_edge(header, body);
    // `for (;;)` never falls out of the header; only break reaches exit.
    if (has_cond) add_edge(header, exit);

    break_targets_.push_back(exit);
    continue_targets_.push_back(header);
    cur_ = body;
    const std::size_t next = close + 1 < end ? parse_statement(toks, close + 1, end) : end;
    if (!terminated_) {
      // The step expression runs at the bottom of the body.
      if (second_semi != kNpos) append(toks, second_semi + 1, close, false);
      add_edge(cur_, header);
    }
    break_targets_.pop_back();
    continue_targets_.pop_back();

    cur_ = exit;
    terminated_ = false;
    return next;
  }

  std::size_t parse_do(std::span<const lang::Token> toks, std::size_t i,
                       std::size_t end) {
    const std::size_t body = new_block();
    if (!terminated_) add_edge(cur_, body);
    const std::size_t cond = new_block();
    const std::size_t exit = new_block();

    break_targets_.push_back(exit);
    continue_targets_.push_back(cond);
    cur_ = body;
    terminated_ = false;
    std::size_t next = i + 1 < end ? parse_statement(toks, i + 1, end) : end;
    if (!terminated_) add_edge(cur_, cond);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    cur_ = cond;
    terminated_ = false;
    // `while ( ... ) ;`
    if (next < end && toks[next].text == "while") {
      const std::size_t open = next + 1;
      if (open < end && toks[open].text == "(") {
        std::size_t close = match_bracket(toks.subspan(0, end), open, "(", ")");
        if (close == kNpos) close = end - 1;
        append(toks, next, close + 1, /*is_condition=*/true);
        next = close + 1;
        if (next < end && toks[next].text == ";") ++next;
      } else {
        ++next;
      }
    }
    add_edge(cond, body);  // back edge
    add_edge(cond, exit);
    cur_ = exit;
    terminated_ = false;
    return next;
  }

  std::size_t parse_switch(std::span<const lang::Token> toks, std::size_t i,
                           std::size_t end) {
    const std::size_t open = i + 1;
    if (open >= end || toks[open].text != "(") return i + 1;
    std::size_t close = match_bracket(toks.subspan(0, end), open, "(", ")");
    if (close == kNpos) close = end - 1;
    append(toks, i, close + 1, /*is_condition=*/true);
    const std::size_t header = cur_;

    std::size_t body_open = close + 1;
    if (body_open >= end || toks[body_open].text != "{") {
      return close + 1;  // switch without a block: nothing to schedule
    }
    std::size_t body_close = match_bracket(toks.subspan(0, end), body_open, "{", "}");
    if (body_close == kNpos) body_close = end;

    const std::size_t exit = new_block();
    break_targets_.push_back(exit);
    bool saw_default = false;

    std::size_t j = body_open + 1;
    terminated_ = true;  // no fallthrough into the first case from the header
    while (j < body_close) {
      const lang::Token& t = toks[j];
      if (t.text == "case" || t.text == "default") {
        saw_default |= t.text == "default";
        // Find the ':' ending the label (skip ?: by tracking brackets).
        std::size_t colon = j + 1;
        while (colon < body_close && toks[colon].text != ":") ++colon;
        const std::size_t arm = new_block();
        add_edge(header, arm);
        if (!terminated_) add_edge(cur_, arm);  // fallthrough from previous arm
        cur_ = arm;
        terminated_ = false;
        j = colon + 1;
        continue;
      }
      j = parse_statement(toks, j, body_close);
    }
    if (!terminated_) add_edge(cur_, exit);
    if (!saw_default) add_edge(header, exit);
    break_targets_.pop_back();

    cur_ = exit;
    terminated_ = false;
    return body_close + 1;
  }

  /// Index of the `;` ending the statement at `i` (bracket-depth aware);
  /// `end - 1` when the fragment is truncated.
  std::size_t find_semicolon(std::span<const lang::Token> toks, std::size_t i,
                             std::size_t end) const {
    std::size_t depth = 0;
    for (std::size_t j = i; j < end; ++j) {
      const std::string& text = toks[j].text;
      if (text == "(" || text == "[" || text == "{") ++depth;
      else if (text == ")" || text == "]") {
        if (depth > 0) --depth;
      } else if (text == "}") {
        if (depth == 0) return j > i ? j - 1 : i;  // ran past our scope
        --depth;
      } else if (text == ";" && depth == 0) {
        return j;
      }
    }
    return end == 0 ? 0 : end - 1;
  }

  void resolve_gotos() {
    for (const auto& [label, from] : pending_gotos_) {
      const auto it = labels_.find(label);
      add_edge(from, it != labels_.end() ? it->second : Cfg::kExit);
    }
  }

  void seal() {
    for (const BasicBlock& block : cfg_.blocks) {
      for (std::size_t succ : block.succs) {
        cfg_.blocks[succ].preds.push_back(block.id);
      }
    }
  }

  Cfg cfg_;
  std::size_t cur_ = 0;
  bool terminated_ = false;
  std::vector<std::size_t> break_targets_;
  std::vector<std::size_t> continue_targets_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::string, std::size_t>> pending_gotos_;
};

/// Parameter names declared in the signature tokens `( ... )`. The name
/// of each comma-separated declarator is its last depth-0 identifier;
/// parameters declared with '*' are additionally recorded as pointers.
void scan_params(std::span<const lang::Token> tokens, std::size_t open,
                 std::size_t close, Cfg& cfg) {
  bool saw_star = false;
  std::string last_identifier;
  std::size_t depth = 0;
  const auto flush = [&] {
    if (!last_identifier.empty()) {
      cfg.params.push_back(last_identifier);
      if (saw_star) cfg.pointer_params.push_back(last_identifier);
    }
    saw_star = false;
    last_identifier.clear();
  };
  for (std::size_t i = open + 1; i < close; ++i) {
    const lang::Token& t = tokens[i];
    if (t.text == "(" || t.text == "[") { ++depth; continue; }
    if (t.text == ")" || t.text == "]") { if (depth > 0) --depth; continue; }
    if (depth > 0) continue;
    if (t.text == "*") {
      saw_star = true;
    } else if (t.kind == lang::TokenKind::kIdentifier) {
      last_identifier = t.text;
    } else if (t.text == ",") {
      flush();
    }
  }
  flush();
}

}  // namespace

std::string Statement::text() const {
  std::string out;
  for (const lang::Token& t : tokens) {
    if (!out.empty()) out += ' ';
    out += t.text;
  }
  return out;
}

std::size_t Cfg::edge_count() const noexcept {
  std::size_t edges = 0;
  for (const BasicBlock& block : blocks) edges += block.succs.size();
  return edges;
}

std::size_t Cfg::cyclomatic() const noexcept {
  const std::size_t edges = edge_count();
  const std::size_t nodes = blocks.size();
  return edges + 2 > nodes ? edges + 2 - nodes : 1;
}

Cfg build_cfg(std::span<const lang::Token> tokens, std::string function_name) {
  CfgBuilder builder(std::move(function_name));
  return builder.build(tokens);
}

std::vector<Cfg> build_cfgs(std::string_view source) {
  const std::vector<lang::Token> tokens = lang::lex(source);
  const lang::ParsedFile parsed = lang::parse_source(source);

  std::vector<Cfg> out;
  std::vector<bool> covered(tokens.size(), false);

  for (const lang::FunctionInfo& fn : parsed.functions) {
    // Locate the name token, its parameter list, and the body braces.
    std::size_t name_index = kNpos;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].line == fn.signature_line &&
          tokens[i].kind == lang::TokenKind::kIdentifier &&
          tokens[i].text == fn.name && i + 1 < tokens.size() &&
          tokens[i + 1].text == "(") {
        name_index = i;
        break;
      }
    }
    if (name_index == kNpos) continue;
    const std::size_t params_close =
        match_bracket(tokens, name_index + 1, "(", ")");
    if (params_close == kNpos) continue;
    std::size_t body_open = params_close + 1;
    if (body_open >= tokens.size() || tokens[body_open].text != "{") continue;
    std::size_t body_close = match_bracket(tokens, body_open, "{", "}");
    if (body_close == kNpos) body_close = tokens.size() - 1;

    Cfg cfg = build_cfg(
        std::span<const lang::Token>(tokens).subspan(body_open,
                                                     body_close - body_open + 1),
        fn.name);
    scan_params(tokens, name_index + 1, params_close, cfg);
    out.push_back(std::move(cfg));
    // The return type and qualifiers precede the name; cover them back to
    // the previous statement/body boundary so they don't end up in the
    // leftover pseudo-function.
    std::size_t decl_start = name_index;
    while (decl_start > 0) {
      const lang::Token& prev = tokens[decl_start - 1];
      if (prev.kind != lang::TokenKind::kIdentifier &&
          prev.kind != lang::TokenKind::kKeyword && prev.text != "*") {
        break;
      }
      --decl_start;
    }
    for (std::size_t i = decl_start; i <= body_close && i < covered.size(); ++i) {
      covered[i] = true;
    }
  }

  // Leftover tokens (hunk fragments with the signature out of view) form
  // one pseudo-function so the checkers still see them.
  std::vector<lang::Token> leftover;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (covered[i]) continue;
    const lang::Token& t = tokens[i];
    if (t.kind == lang::TokenKind::kComment ||
        t.kind == lang::TokenKind::kPreprocessor) {
      continue;
    }
    leftover.push_back(t);
  }
  if (leftover.size() > 2) {
    out.push_back(build_cfg(leftover, "<fragment>"));
  }
  return out;
}

}  // namespace patchdb::analysis
