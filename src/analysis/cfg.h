// Per-function control-flow graph construction over the token stream.
// This is the semantic layer the paper's Table I feature space lacks:
// parser.h recovers function and `if` extents, and this module turns a
// function body into basic blocks with branch/loop/jump edges so the
// dataflow passes (dataflow.h) and the security checkers (checkers.h)
// can reason about execution order instead of raw diff lines. Like the
// lexer, construction is total: dirty or truncated patch fragments
// produce a (possibly degenerate) graph, never an error.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace patchdb::analysis {

/// One statement as scheduled into a basic block: its tokens (comments
/// and preprocessor directives stripped) plus source position.
struct Statement {
  std::vector<lang::Token> tokens;
  std::size_t line = 0;       // line of the first token
  bool is_condition = false;  // the controlling expression of if/while/for/do/switch

  /// Token texts joined with single spaces (for messages and tests).
  std::string text() const;
};

struct BasicBlock {
  std::size_t id = 0;
  std::vector<Statement> statements;
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;  // derived from succs when the graph is sealed
};

/// Control-flow graph of one function (or of a bare fragment). Block 0
/// is the synthetic entry, block 1 the synthetic exit; both are empty.
struct Cfg {
  static constexpr std::size_t kEntry = 0;
  static constexpr std::size_t kExit = 1;

  std::string function;                      // "<fragment>" outside any function
  std::vector<std::string> params;           // all named parameters, in order
  std::vector<std::string> pointer_params;   // parameters declared with '*'
  std::vector<BasicBlock> blocks;

  std::size_t edge_count() const noexcept;
  /// McCabe complexity E - N + 2, clamped to >= 1.
  std::size_t cyclomatic() const noexcept;
};

/// Build the CFG of one function body given its tokens (everything
/// between and including the outermost braces, or any brace-less
/// statement run).
Cfg build_cfg(std::span<const lang::Token> tokens, std::string function_name);

/// CFGs of every function definition in a source fragment. Tokens not
/// covered by any recognized function are collected into a trailing
/// "<fragment>" CFG so hunk fragments without a visible signature still
/// get analyzed.
std::vector<Cfg> build_cfgs(std::string_view source);

}  // namespace patchdb::analysis
