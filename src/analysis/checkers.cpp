#include "analysis/checkers.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

#include "analysis/summary.h"
#include "lang/lexer.h"

namespace patchdb::analysis {

namespace {

constexpr CheckerInfo kCheckers[] = {
    {CheckerId::kUncheckedAlloc, "unchecked-alloc",
     "allocator result dereferenced before any null test"},
    {CheckerId::kMissingBoundsCheck, "missing-bounds-check",
     "unbounded copy, or index/size argument with no dominating bound check"},
    {CheckerId::kUseAfterFree, "use-after-free",
     "pointer used or re-freed after a free() on some path"},
    {CheckerId::kIntOverflowSize, "int-overflow-size",
     "unguarded arithmetic inside an allocation size argument"},
    {CheckerId::kMissingNullGuard, "missing-null-guard",
     "pointer parameter dereferenced before any null guard"},
    {CheckerId::kUninitUse, "uninit-use",
     "variable read while possibly uninitialized"},
    {CheckerId::kFormatString, "format-string",
     "non-literal format argument to a printf-family call"},
};

/// Size-argument position of the bounded copy routines.
int sized_copy_arg(std::string_view name) {
  if (name == "memcpy" || name == "memmove" || name == "memset" ||
      name == "strncpy" || name == "strncat" || name == "bcopy") {
    return 2;
  }
  return -1;
}

bool is_unbounded_copy(std::string_view name) {
  return name == "strcpy" || name == "strcat" || name == "gets" ||
         name == "sprintf" || name == "vsprintf" || name == "stpcpy";
}

/// Format-argument position of the printf family; -1 when not in it.
int format_arg(std::string_view name) {
  if (name == "printf" || name == "vprintf" || name == "printk") return 0;
  if (name == "fprintf" || name == "dprintf" || name == "sprintf" ||
      name == "vsprintf" || name == "syslog" || name == "vfprintf") {
    return 1;
  }
  if (name == "snprintf" || name == "vsnprintf") return 2;
  return -1;
}

struct ArgScan {
  std::vector<std::string> identifiers;
  bool has_sizeof = false;
  bool has_arith = false;  // * + << between operands
};

ArgScan scan_argument(const std::string& text) {
  ArgScan scan;
  const std::vector<lang::Token> toks = lang::lex(text);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const lang::Token& t = toks[i];
    if (t.kind == lang::TokenKind::kIdentifier) {
      if (t.text == "sizeof") {
        scan.has_sizeof = true;
      } else if (i + 1 >= toks.size() || toks[i + 1].text != "(") {
        scan.identifiers.push_back(t.text);
      }
    } else if (t.kind == lang::TokenKind::kKeyword && t.text == "sizeof") {
      scan.has_sizeof = true;
    } else if (t.kind == lang::TokenKind::kOperator &&
               (t.text == "*" || t.text == "+" || t.text == "<<") && i > 0 &&
               i + 1 < toks.size()) {
      const auto operand = [](const lang::Token& tok) {
        return tok.kind == lang::TokenKind::kIdentifier ||
               tok.kind == lang::TokenKind::kNumber || tok.text == ")" ||
               tok.text == "(";
      };
      if (operand(toks[i - 1]) && operand(toks[i + 1])) scan.has_arith = true;
    }
  }
  return scan;
}

class CheckerRun {
 public:
  explicit CheckerRun(const Cfg& cfg, const SummaryTable* summaries = nullptr)
      : cfg_(cfg), summaries_(summaries) {}

  std::vector<Diagnostic> run(const DataflowResult& dataflow) {
    for (const BasicBlock& block : cfg_.blocks) {
      FlowState state = state_at_entry(dataflow, block.id);
      for (std::size_t s = 0; s < block.statements.size(); ++s) {
        const Statement& stmt = block.statements[s];
        const StatementFacts& facts = dataflow.facts[block.id][s];
        check_statement(stmt, facts, state);
        advance(state, facts);
      }
    }
    return std::move(diagnostics_);
  }

 private:
  void report(CheckerId checker, const Statement& stmt, const std::string& symbol,
              std::string message) {
    if (!seen_.insert({static_cast<int>(checker), symbol}).second) return;
    Diagnostic d;
    d.checker = checker;
    d.function = cfg_.function;
    d.line = stmt.line;
    d.symbol = symbol;
    d.message = std::move(message);
    diagnostics_.push_back(std::move(d));
  }

  void check_statement(const Statement& stmt, const StatementFacts& facts,
                       const FlowState& state) {
    // unchecked-alloc: dereference of a pointer still in the unchecked set.
    for (const std::string& v : facts.derefs) {
      if (state.unchecked_alloc.count(v)) {
        report(CheckerId::kUncheckedAlloc, stmt, v,
               "allocation result '" + v + "' dereferenced without a null check");
      }
    }

    // use-after-free: any read or re-free of a maybe-freed pointer.
    for (const std::string& v : facts.uses) {
      if (state.maybe_freed.count(v)) {
        report(CheckerId::kUseAfterFree, stmt, v, "'" + v + "' used after free");
      }
    }
    for (const std::string& v : facts.freed) {
      if (state.maybe_freed.count(v)) {
        report(CheckerId::kUseAfterFree, stmt, v, "double free of '" + v + "'");
      }
    }

    // missing-null-guard: dereference of a never-tested pointer parameter.
    for (const std::string& v : facts.derefs) {
      if (state.unguarded_params.count(v)) {
        report(CheckerId::kMissingNullGuard, stmt, v,
               "parameter '" + v + "' dereferenced without a null guard");
      }
    }

    // uninit-use: read of a possibly-uninitialized variable.
    for (const std::string& v : facts.uses) {
      if (state.maybe_uninit.count(v)) {
        report(CheckerId::kUninitUse, stmt, v,
               "'" + v + "' may be used uninitialized");
      }
    }

    // missing-bounds-check (a): index variables with no dominating bound.
    for (const std::string& v : facts.index_vars) {
      if (!state.bound_guarded.count(v)) {
        report(CheckerId::kMissingBoundsCheck, stmt, v,
               "index '" + v + "' used without a bounds check");
      }
    }

    // call-shaped checks.
    for (std::size_t c = 0; c < facts.calls.size(); ++c) {
      const std::string& callee = facts.calls[c];
      const std::vector<std::string>& args = facts.call_args[c];

      // missing-bounds-check (b): inherently unbounded copies.
      if (is_unbounded_copy(callee)) {
        report(CheckerId::kMissingBoundsCheck, stmt, callee,
               "unbounded '" + callee + "' call");
      }

      // missing-bounds-check (c): size argument of a bounded copy that is
      // a plain variable never compared against anything.
      const int size_pos = sized_copy_arg(callee);
      if (size_pos >= 0 && static_cast<std::size_t>(size_pos) < args.size()) {
        const ArgScan scan = scan_argument(args[static_cast<std::size_t>(size_pos)]);
        if (!scan.has_sizeof) {
          for (const std::string& id : scan.identifiers) {
            if (!state.bound_guarded.count(id)) {
              report(CheckerId::kMissingBoundsCheck, stmt, id,
                     "size argument '" + id + "' of '" + callee +
                         "' not bounds-checked");
              break;
            }
          }
        }
      }

      // int-overflow-size: arithmetic in an allocation size argument with
      // at least one unguarded variable operand.
      const int alloc_pos = alloc_size_arg(callee);
      if (alloc_pos >= 0 && static_cast<std::size_t>(alloc_pos) < args.size()) {
        const ArgScan scan = scan_argument(args[static_cast<std::size_t>(alloc_pos)]);
        if (scan.has_arith && !scan.identifiers.empty()) {
          const bool all_guarded = std::all_of(
              scan.identifiers.begin(), scan.identifiers.end(),
              [&](const std::string& id) { return state.bound_guarded.count(id) > 0; });
          if (!all_guarded) {
            report(CheckerId::kIntOverflowSize, stmt, scan.identifiers.front(),
                   "possible integer overflow in size passed to '" + callee + "'");
          }
        }
      }

      // format-string: a variable where a format literal belongs.
      const int fmt_pos = format_arg(callee);
      if (fmt_pos >= 0 && static_cast<std::size_t>(fmt_pos) < args.size()) {
        const std::vector<lang::Token> fmt =
            lang::lex(args[static_cast<std::size_t>(fmt_pos)]);
        if (!fmt.empty() && fmt.front().kind == lang::TokenKind::kIdentifier) {
          report(CheckerId::kFormatString, stmt, fmt.front().text,
                 "non-literal format string '" + fmt.front().text + "' passed to '" +
                     callee + "'");
        }
      }

      // Interprocedural checks: effects the callee's summary exposes.
      if (summaries_ != nullptr) check_call_summary(stmt, state, callee, args);
    }
  }

  /// Summary-mediated findings at one call site: the callee dereferences
  /// or sizes an allocation with what we hand it. (Frees performed by
  /// callees need no check here — augmented facts feed them through the
  /// regular use-after-free logic.)
  void check_call_summary(const Statement& stmt, const FlowState& state,
                          const std::string& callee,
                          const std::vector<std::string>& args) {
    const FunctionSummary* g = summaries_->find(callee);
    if (g == nullptr) return;
    const std::size_t argc = std::min(args.size(), g->param_flags.size());
    for (std::size_t j = 0; j < argc; ++j) {
      const ParamSummary& effect = g->param_flags[j];
      if (!effect.deref_unguarded && !effect.alloc_size_unguarded) continue;
      const ArgScan scan = scan_argument(args[j]);
      if (scan.identifiers.empty()) continue;
      const std::string& base = scan.identifiers.front();

      if (effect.deref_unguarded) {
        if (state.unguarded_params.count(base)) {
          report(CheckerId::kMissingNullGuard, stmt, base,
                 "parameter '" + base + "' passed to '" + callee +
                     "', which dereferences it without a null guard");
        }
        if (state.unchecked_alloc.count(base)) {
          report(CheckerId::kUncheckedAlloc, stmt, base,
                 "allocation result '" + base + "' passed to '" + callee +
                     "', which dereferences it without a null check");
        }
      }

      if (effect.alloc_size_unguarded && scan.has_arith) {
        const bool all_guarded = std::all_of(
            scan.identifiers.begin(), scan.identifiers.end(),
            [&](const std::string& id) { return state.bound_guarded.count(id) > 0; });
        if (!all_guarded) {
          report(CheckerId::kIntOverflowSize, stmt, base,
                 "possible integer overflow in size passed to allocation "
                 "wrapper '" + callee + "'");
        }
      }
    }
  }

  const Cfg& cfg_;
  const SummaryTable* summaries_ = nullptr;
  std::set<std::pair<int, std::string>> seen_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace

std::span<const CheckerInfo> checkers() { return kCheckers; }

std::string_view checker_name(CheckerId id) {
  return kCheckers[static_cast<std::size_t>(id)].name;
}

std::string Diagnostic::key() const {
  std::string key(checker_name(checker));
  key += '|';
  key += function;
  key += '|';
  key += symbol;
  return key;
}

std::vector<Diagnostic> run_checkers(const Cfg& cfg, const DataflowResult& dataflow) {
  CheckerRun run(cfg);
  return run.run(dataflow);
}

std::vector<Diagnostic> run_checkers(const Cfg& cfg, const DataflowResult& dataflow,
                                     const SummaryTable* summaries) {
  CheckerRun run(cfg, summaries);
  return run.run(dataflow);
}

std::vector<Diagnostic> run_checkers(const Cfg& cfg) {
  const DataflowResult dataflow = analyze_dataflow(cfg);
  return run_checkers(cfg, dataflow);
}

}  // namespace patchdb::analysis
