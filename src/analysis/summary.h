// Per-function security summaries, computed bottom-up over the SCC
// condensation of the call graph to a fixpoint. A summary abstracts the
// callee-visible behaviour the checkers care about: which parameters the
// function dereferences without a dominating null test, which it frees
// (directly or through another freeing callee), which flow unguarded
// into an allocation size, and whether its return value is a fresh
// (possibly-null) allocation. Summaries let every intraprocedural
// checker see through one or more call boundaries: `my_free(p)` taints
// `p` exactly like `free(p)`, `my_malloc(n * m)` is scrutinized like
// `malloc(n * m)`, and passing an unchecked pointer to a callee that
// dereferences its parameter is reported at the call site.
//
// All summary bits are monotone (they only flip from clear to set as the
// table grows), so the per-SCC iteration terminates; a generous cap
// bounds it anyway. Like every layer below it, computation is total:
// degenerate fragments and calls to unknown functions yield empty or
// partial summaries, never an error.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace patchdb::analysis {

struct ParamSummary {
  bool deref_unguarded = false;     // dereferenced with no dominating null test
  bool freed = false;               // reaches a deallocator (possibly via callees)
  bool alloc_size_unguarded = false;  // flows into an allocation size unguarded

  bool any() const noexcept {
    return deref_unguarded || freed || alloc_size_unguarded;
  }
  bool operator==(const ParamSummary&) const = default;
};

struct FunctionSummary {
  std::vector<std::string> params;        // names, in signature order
  std::vector<ParamSummary> param_flags;  // aligned with `params`
  bool returns_fresh_alloc = false;

  /// Index of a parameter name; npos when the name is not a parameter.
  std::size_t param_index(std::string_view name) const;
  bool flagged() const;  // any param flag set, or a fresh-alloc return

  /// Compact stable encoding ("ret=alloc p0=DU p2=F") used to diff the
  /// BEFORE and AFTER summary of a function across a patch.
  std::string signature() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  bool operator==(const FunctionSummary&) const = default;
};

struct SummaryTable {
  std::unordered_map<std::string, FunctionSummary> by_function;
  std::size_t iterations = 0;  // fixpoint sweeps, summed over SCCs

  const FunctionSummary* find(std::string_view name) const;
  std::size_t flagged_count() const;
};

/// Compute the table for a fragment's functions, bottom-up over the
/// condensed call graph (graph and cfgs must describe the same slice).
SummaryTable compute_summaries(const std::vector<Cfg>& cfgs,
                               const CallGraph& graph);

/// Convenience overload that builds the call graph itself.
SummaryTable compute_summaries(const std::vector<Cfg>& cfgs);

/// Copy of `facts` with callee effects from the table applied: the base
/// identifier of an argument passed to a freeing parameter joins
/// `freed`, and an assignment whose RHS calls a fresh-allocation wrapper
/// marks its definitions as allocation results — so the existing
/// gen/kill passes and checkers see through wrappers unchanged.
StatementFacts augment_facts(const StatementFacts& facts,
                             const SummaryTable& table);

/// Summary-aware dataflow: identical to analyze_dataflow(cfg) except
/// every statement's facts are augmented with the table's callee effects
/// before the fixpoint solves (result.facts holds the augmented facts,
/// keeping the checkers' block replay consistent with the solver).
DataflowResult analyze_dataflow(const Cfg& cfg, const SummaryTable& table);

}  // namespace patchdb::analysis
