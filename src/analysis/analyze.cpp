#include "analysis/analyze.h"

#include <map>
#include <set>
#include <utility>

#include "analysis/callgraph.h"
#include "analysis/summary.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchdb::analysis {

namespace {

/// Multiset of diagnostic keys -> representative diagnostic + count.
struct KeyedDiagnostics {
  std::map<std::string, std::pair<Diagnostic, std::size_t>> by_key;

  explicit KeyedDiagnostics(const std::vector<Diagnostic>& diagnostics) {
    for (const Diagnostic& d : diagnostics) {
      auto [it, inserted] = by_key.try_emplace(d.key(), d, 0u);
      ++it->second.second;
    }
  }
};

void diff_reports(const FileReport& before, const FileReport& after,
                  PatchAnalysis& out) {
  const KeyedDiagnostics b(before.diagnostics);
  const KeyedDiagnostics a(after.diagnostics);

  for (const auto& [key, entry] : b.by_key) {
    const auto it = a.by_key.find(key);
    const std::size_t after_count = it == a.by_key.end() ? 0 : it->second.second;
    if (entry.second > after_count) {
      const std::size_t n = entry.second - after_count;
      out.resolved_by_checker[static_cast<std::size_t>(entry.first.checker)] += n;
      out.resolved.push_back(entry.first);
    }
  }
  for (const auto& [key, entry] : a.by_key) {
    const auto it = b.by_key.find(key);
    const std::size_t before_count = it == b.by_key.end() ? 0 : it->second.second;
    if (entry.second > before_count) {
      const std::size_t n = entry.second - before_count;
      out.introduced_by_checker[static_cast<std::size_t>(entry.first.checker)] += n;
      out.introduced.push_back(entry.first);
    }
  }

  out.net_blocks = static_cast<long>(after.blocks) - static_cast<long>(before.blocks);
  out.net_edges = static_cast<long>(after.edges) - static_cast<long>(before.edges);
  out.net_cyclomatic =
      static_cast<long>(after.cyclomatic) - static_cast<long>(before.cyclomatic);
}

/// Function name -> concatenated body text (first definition wins), the
/// cheap identity used to decide which functions the patch changed.
std::map<std::string, std::string> function_texts(const FileReport& report) {
  std::map<std::string, std::string> out;
  for (const Cfg& cfg : report.cfgs) {
    std::string text;
    for (const BasicBlock& block : cfg.blocks) {
      for (const Statement& stmt : block.statements) {
        text += stmt.text();
        text += '\n';
      }
    }
    out.try_emplace(cfg.function, std::move(text));
  }
  return out;
}

void diff_interproc(const FileReport& before, const FileReport& after,
                    PatchAnalysis& out) {
  out.interproc = true;
  out.net_call_edges = static_cast<long>(after.interproc.call_edges) -
                       static_cast<long>(before.interproc.call_edges);

  std::set<std::string> names;
  for (const auto& [name, sig] : before.interproc.summary_signatures) {
    names.insert(name);
  }
  for (const auto& [name, sig] : after.interproc.summary_signatures) {
    names.insert(name);
  }
  const auto signature_in = [](const InterprocStats& stats, const std::string& name)
      -> const std::string* {
    const auto it = stats.summary_signatures.find(name);
    return it == stats.summary_signatures.end() ? nullptr : &it->second;
  };
  static const std::string kMissing;
  for (const std::string& name : names) {
    const std::string* b = signature_in(before.interproc, name);
    const std::string* a = signature_in(after.interproc, name);
    out.summary_changes += (b == nullptr ? kMissing : *b) !=
                           (a == nullptr ? kMissing : *a);
  }

  // Changed functions: body text differs between the sides (or the
  // function exists on one side only). Their call-graph context — who
  // calls them, whom they call — is the paper-adjacent fan signal. The
  // "<fragment>" pseudo-function churns with hunk framing, so it is
  // excluded.
  const std::map<std::string, std::string> texts_before = function_texts(before);
  const std::map<std::string, std::string> texts_after = function_texts(after);
  std::set<std::string> changed;
  for (const auto& [name, text] : texts_before) {
    const auto it = texts_after.find(name);
    if (it == texts_after.end() || it->second != text) changed.insert(name);
  }
  for (const auto& [name, text] : texts_after) {
    if (!texts_before.count(name)) changed.insert(name);
  }
  changed.erase("<fragment>");
  for (const std::string& name : changed) {
    const auto in_after = after.interproc.fan.find(name);
    const auto& fan = in_after != after.interproc.fan.end()
                          ? in_after->second
                          : before.interproc.fan.at(name);
    out.changed_fan_in += fan.first;
    out.changed_fan_out += fan.second;
  }
}

}  // namespace

FileReport analyze_source(std::string_view source, const AnalyzeOptions& options) {
  FileReport report;
  report.cfgs = build_cfgs(source);
  for (const Cfg& cfg : report.cfgs) {
    report.blocks += cfg.blocks.size();
    report.edges += cfg.edge_count();
    report.cyclomatic += cfg.cyclomatic();
  }

  if (!options.interproc) {
    for (const Cfg& cfg : report.cfgs) {
      std::vector<Diagnostic> diagnostics = run_checkers(cfg);
      report.diagnostics.insert(report.diagnostics.end(),
                                std::make_move_iterator(diagnostics.begin()),
                                std::make_move_iterator(diagnostics.end()));
    }
    return report;
  }

  std::vector<DataflowResult> dataflows;
  dataflows.reserve(report.cfgs.size());
  for (const Cfg& cfg : report.cfgs) dataflows.push_back(analyze_dataflow(cfg));
  const CallGraph graph = build_call_graph(report.cfgs, dataflows);
  const SummaryTable table = compute_summaries(report.cfgs, graph);

  for (const Cfg& cfg : report.cfgs) {
    const DataflowResult dataflow = analyze_dataflow(cfg, table);
    std::vector<Diagnostic> diagnostics = run_checkers(cfg, dataflow, &table);
    report.diagnostics.insert(report.diagnostics.end(),
                              std::make_move_iterator(diagnostics.begin()),
                              std::make_move_iterator(diagnostics.end()));
  }

  InterprocStats& stats = report.interproc;
  stats.functions = report.cfgs.size();
  stats.call_edges = graph.edge_count();
  stats.call_sites = graph.call_sites;
  stats.unresolved_calls = graph.unresolved_calls;
  stats.sccs = graph.sccs.size();
  stats.recursive_sccs = graph.recursive_scc_count();
  stats.summary_iterations = table.iterations;
  stats.flagged_summaries = table.flagged_count();
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    // Duplicate names collapse onto their first definition, matching the
    // graph's name table.
    if (graph.index_of(graph.nodes[i].name) != i) continue;
    stats.fan[graph.nodes[i].name] = {graph.nodes[i].fan_in,
                                      graph.nodes[i].fan_out};
  }
  for (const auto& [name, summary] : table.by_function) {
    stats.summary_signatures[name] = summary.signature();
  }
  return report;
}

FileReport analyze_source(std::string_view source) {
  return analyze_source(source, AnalyzeOptions{});
}

PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source,
                               const AnalyzeOptions& options) {
  PatchAnalysis out;
  out.before = analyze_source(before_source, options);
  out.after = analyze_source(after_source, options);
  diff_reports(out.before, out.after, out);
  if (options.interproc) diff_interproc(out.before, out.after, out);
  return out;
}

PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source) {
  return analyze_versions(before_source, after_source, AnalyzeOptions{});
}

std::string reconstruct_fragment(const diff::FileDiff& file_diff, bool after) {
  std::string out;
  for (const diff::Hunk& hunk : file_diff.hunks) {
    // The section line often carries the enclosing function signature;
    // prepend it so the fragment parser can attribute the hunk.
    if (!hunk.section.empty()) {
      out += hunk.section;
      out += '\n';
    }
    for (const diff::Line& line : hunk.lines) {
      if (after && line.kind == diff::LineKind::kRemoved) continue;
      if (!after && line.kind == diff::LineKind::kAdded) continue;
      out += line.text;
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

PatchAnalysis analyze_patch(const diff::Patch& patch, const AnalyzeOptions& options) {
  PATCHDB_TRACE_SPAN("analysis.patch");
  PATCHDB_COUNTER_ADD("analysis.patches", 1);
  if (options.interproc) PATCHDB_COUNTER_ADD("analysis.interproc.patches", 1);
  std::string before_source;
  std::string after_source;
  for (const diff::FileDiff& fd : patch.files) {
    const std::string& path = fd.new_path.empty() ? fd.old_path : fd.new_path;
    if (!diff::is_cpp_path(path)) continue;
    before_source += reconstruct_fragment(fd, /*after=*/false);
    after_source += reconstruct_fragment(fd, /*after=*/true);
  }
  PatchAnalysis result = analyze_versions(before_source, after_source, options);
  PATCHDB_COUNTER_ADD("analysis.diagnostics",
                      result.before.diagnostics.size() +
                          result.after.diagnostics.size());
  return result;
}

PatchAnalysis analyze_patch(const diff::Patch& patch) {
  return analyze_patch(patch, AnalyzeOptions{});
}

}  // namespace patchdb::analysis
