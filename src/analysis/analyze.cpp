#include "analysis/analyze.h"

#include <map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchdb::analysis {

namespace {

/// Multiset of diagnostic keys -> representative diagnostic + count.
struct KeyedDiagnostics {
  std::map<std::string, std::pair<Diagnostic, std::size_t>> by_key;

  explicit KeyedDiagnostics(const std::vector<Diagnostic>& diagnostics) {
    for (const Diagnostic& d : diagnostics) {
      auto [it, inserted] = by_key.try_emplace(d.key(), d, 0u);
      ++it->second.second;
    }
  }
};

void diff_reports(const FileReport& before, const FileReport& after,
                  PatchAnalysis& out) {
  const KeyedDiagnostics b(before.diagnostics);
  const KeyedDiagnostics a(after.diagnostics);

  for (const auto& [key, entry] : b.by_key) {
    const auto it = a.by_key.find(key);
    const std::size_t after_count = it == a.by_key.end() ? 0 : it->second.second;
    if (entry.second > after_count) {
      const std::size_t n = entry.second - after_count;
      out.resolved_by_checker[static_cast<std::size_t>(entry.first.checker)] += n;
      out.resolved.push_back(entry.first);
    }
  }
  for (const auto& [key, entry] : a.by_key) {
    const auto it = b.by_key.find(key);
    const std::size_t before_count = it == b.by_key.end() ? 0 : it->second.second;
    if (entry.second > before_count) {
      const std::size_t n = entry.second - before_count;
      out.introduced_by_checker[static_cast<std::size_t>(entry.first.checker)] += n;
      out.introduced.push_back(entry.first);
    }
  }

  out.net_blocks = static_cast<long>(after.blocks) - static_cast<long>(before.blocks);
  out.net_edges = static_cast<long>(after.edges) - static_cast<long>(before.edges);
  out.net_cyclomatic =
      static_cast<long>(after.cyclomatic) - static_cast<long>(before.cyclomatic);
}

}  // namespace

FileReport analyze_source(std::string_view source) {
  FileReport report;
  report.cfgs = build_cfgs(source);
  for (const Cfg& cfg : report.cfgs) {
    report.blocks += cfg.blocks.size();
    report.edges += cfg.edge_count();
    report.cyclomatic += cfg.cyclomatic();
    std::vector<Diagnostic> diagnostics = run_checkers(cfg);
    report.diagnostics.insert(report.diagnostics.end(),
                              std::make_move_iterator(diagnostics.begin()),
                              std::make_move_iterator(diagnostics.end()));
  }
  return report;
}

PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source) {
  PatchAnalysis out;
  out.before = analyze_source(before_source);
  out.after = analyze_source(after_source);
  diff_reports(out.before, out.after, out);
  return out;
}

std::string reconstruct_fragment(const diff::FileDiff& file_diff, bool after) {
  std::string out;
  for (const diff::Hunk& hunk : file_diff.hunks) {
    // The section line often carries the enclosing function signature;
    // prepend it so the fragment parser can attribute the hunk.
    if (!hunk.section.empty()) {
      out += hunk.section;
      out += '\n';
    }
    for (const diff::Line& line : hunk.lines) {
      if (after && line.kind == diff::LineKind::kRemoved) continue;
      if (!after && line.kind == diff::LineKind::kAdded) continue;
      out += line.text;
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

PatchAnalysis analyze_patch(const diff::Patch& patch) {
  PATCHDB_TRACE_SPAN("analysis.patch");
  PATCHDB_COUNTER_ADD("analysis.patches", 1);
  std::string before_source;
  std::string after_source;
  for (const diff::FileDiff& fd : patch.files) {
    const std::string& path = fd.new_path.empty() ? fd.old_path : fd.new_path;
    if (!diff::is_cpp_path(path)) continue;
    before_source += reconstruct_fragment(fd, /*after=*/false);
    after_source += reconstruct_fragment(fd, /*after=*/true);
  }
  PatchAnalysis result = analyze_versions(before_source, after_source);
  PATCHDB_COUNTER_ADD("analysis.diagnostics",
                      result.before.diagnostics.size() +
                          result.after.diagnostics.size());
  return result;
}

}  // namespace patchdb::analysis
