// Direct-call graph over the functions of one analyzed fragment. This
// is the interprocedural spine: nodes are the CFGs build_cfgs produced,
// edges are call sites whose callee is defined in the same fragment
// (calls that leave the fragment are counted as unresolved, never an
// error — hunk slices routinely reference functions outside the diff).
// The graph is condensed into strongly connected components so the
// summary fixpoint (summary.h) can run bottom-up even over recursive
// and mutually recursive functions. Like the CFG layer, construction is
// total: any input yields a (possibly edgeless) graph.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace patchdb::analysis {

struct CallGraphNode {
  std::string name;
  std::size_t fan_in = 0;   // distinct in-fragment callers
  std::size_t fan_out = 0;  // distinct in-fragment callees
  std::size_t scc = 0;      // condensation component id
};

struct CallGraph {
  /// Aligned with the `cfgs` span the graph was built from.
  std::vector<CallGraphNode> nodes;
  /// Deduplicated direct-call adjacency (caller -> callees).
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::vector<std::size_t>> preds;
  std::size_t call_sites = 0;        // resolved call sites (with repeats)
  std::size_t unresolved_calls = 0;  // callee not defined in the fragment
  /// Condensation: members of each SCC, listed bottom-up — every SCC
  /// appears before any SCC that calls into it, so a single left-to-right
  /// sweep sees callee summaries before their callers.
  std::vector<std::vector<std::size_t>> sccs;

  std::size_t edge_count() const noexcept;
  std::size_t recursive_scc_count() const noexcept;  // self-loops count too
  /// Node index of a function name; npos when not defined here.
  std::size_t index_of(std::string_view name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// First-definition-wins name table (duplicate names keep the first).
  std::unordered_map<std::string, std::size_t> by_name;
};

/// Build the graph from CFGs plus their (position-aligned) dataflow
/// results; the dataflow facts already carry every call site.
CallGraph build_call_graph(const std::vector<Cfg>& cfgs,
                           const std::vector<DataflowResult>& dataflows);

/// Convenience overload that computes the dataflow itself.
CallGraph build_call_graph(const std::vector<Cfg>& cfgs);

}  // namespace patchdb::analysis
