// Rule-based security checkers over the CFG + dataflow facts. Each
// checker encodes one of the recurring C vulnerability shapes behind the
// Table V fix patterns; running them on the BEFORE and AFTER version of
// a patched file and diffing the two diagnostic sets (analyze.h) turns
// "this patch added a bound check" from a syntactic guess into a
// semantic observation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace patchdb::analysis {

enum class CheckerId : int {
  kUncheckedAlloc = 0,   // allocator result dereferenced before a null test
  kMissingBoundsCheck,   // unbounded copy, or unguarded index / size arg
  kUseAfterFree,         // freed pointer used (or freed again) on some path
  kIntOverflowSize,      // unguarded arithmetic inside an allocation size
  kMissingNullGuard,     // pointer parameter dereferenced with no null test
  kUninitUse,            // variable read while possibly uninitialized
  kFormatString,         // non-literal format argument to a printf-family call
};

inline constexpr std::size_t kCheckerCount = 7;

struct CheckerInfo {
  CheckerId id;
  std::string_view name;         // stable short tag (diff keys, CLI output)
  std::string_view description;
};

std::span<const CheckerInfo> checkers();
std::string_view checker_name(CheckerId id);

struct Diagnostic {
  CheckerId checker = CheckerId::kUncheckedAlloc;
  std::string function;  // enclosing function (or "<fragment>")
  std::size_t line = 0;  // line within the analyzed fragment
  std::string symbol;    // variable or callee the finding anchors to
  std::string message;

  /// Version-stable identity: matching a BEFORE diagnostic to an AFTER
  /// one must ignore line numbers (the patch shifts them).
  std::string key() const;
};

struct SummaryTable;  // summary.h

/// Run every registered checker on one function. Diagnostics are deduped
/// per (checker, symbol): the first offending statement wins.
std::vector<Diagnostic> run_checkers(const Cfg& cfg);
std::vector<Diagnostic> run_checkers(const Cfg& cfg, const DataflowResult& dataflow);

/// Summary-aware run: with a non-null table the checkers additionally
/// see through call boundaries — an unguarded pointer handed to a callee
/// that dereferences its parameter, frees performed by wrapper
/// functions, and allocation wrappers' size arguments. `dataflow` must
/// have been computed against the same table (analyze_dataflow(cfg,
/// table)) so wrapper effects are present in the replayed facts. A null
/// table reproduces the intraprocedural run exactly.
std::vector<Diagnostic> run_checkers(const Cfg& cfg, const DataflowResult& dataflow,
                                     const SummaryTable* summaries);

}  // namespace patchdb::analysis
