#include "analysis/summary.h"

#include <algorithm>

#include "lang/lexer.h"
#include "lang/taxonomy.h"
#include "obs/metrics.h"

namespace patchdb::analysis {

namespace {

/// Bits monotonically accumulate, so |params| * 3 + 1 sweeps suffice in
/// theory; the cap only guards against a future non-monotone edit.
constexpr std::size_t kMaxSweeps = 16;

/// Base identifier of an argument expression ("buf" in "buf + off",
/// "p" in "& p -> field"); empty when the argument has none.
std::string base_identifier(const std::string& arg) {
  for (const lang::Token& t : lang::lex(arg)) {
    if (t.kind == lang::TokenKind::kIdentifier && !lang::is_keyword(t.text)) {
      return t.text;
    }
  }
  return {};
}

/// Every non-call identifier of an argument expression.
std::vector<std::string> argument_identifiers(const std::string& arg) {
  std::vector<std::string> out;
  const std::vector<lang::Token> toks = lang::lex(arg);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const lang::Token& t = toks[i];
    if (t.kind != lang::TokenKind::kIdentifier || lang::is_keyword(t.text)) {
      continue;
    }
    if (t.text == "sizeof") continue;
    if (i + 1 < toks.size() && toks[i + 1].text == "(") continue;  // call name
    out.push_back(t.text);
  }
  return out;
}

/// One bottom-up sweep over a single function: derive its summary from
/// the (summary-augmented) dataflow and the current table.
FunctionSummary summarize_function(const Cfg& cfg, const SummaryTable& table) {
  FunctionSummary out;
  out.params = cfg.params;
  out.param_flags.resize(cfg.params.size());

  const DataflowResult dataflow = analyze_dataflow(cfg, table);

  // Flow-insensitive set of variables that ever hold a fresh allocation;
  // `p = my_malloc(n); if (!p) return NULL; return p;` must still mark
  // the wrapper as allocation-returning even though the final return is
  // dominated by a null test.
  FactSet alloc_vars;
  for (const std::vector<StatementFacts>& block : dataflow.facts) {
    for (const StatementFacts& facts : block) {
      alloc_vars.insert(facts.alloc_defs.begin(), facts.alloc_defs.end());
    }
  }

  for (const BasicBlock& block : cfg.blocks) {
    FlowState state = state_at_entry(dataflow, block.id);
    for (std::size_t s = 0; s < block.statements.size(); ++s) {
      const Statement& stmt = block.statements[s];
      const StatementFacts& facts = dataflow.facts[block.id][s];

      for (std::size_t k = 0; k < out.params.size(); ++k) {
        const std::string& p = out.params[k];
        if (facts.derefs.count(p) && state.unguarded_params.count(p)) {
          out.param_flags[k].deref_unguarded = true;
        }
        // Augmented facts already fold callee frees into `freed`.
        if (facts.freed.count(p)) out.param_flags[k].freed = true;
      }

      for (std::size_t c = 0; c < facts.calls.size(); ++c) {
        const std::string& callee = facts.calls[c];
        const std::vector<std::string>& args = facts.call_args[c];

        // Raw allocator: unguarded identifiers in the size argument.
        const int pos = alloc_size_arg(callee);
        if (pos >= 0 && static_cast<std::size_t>(pos) < args.size()) {
          for (const std::string& id :
               argument_identifiers(args[static_cast<std::size_t>(pos)])) {
            const std::size_t k = out.param_index(id);
            if (k != FunctionSummary::npos && !state.bound_guarded.count(id)) {
              out.param_flags[k].alloc_size_unguarded = true;
            }
          }
        }

        const FunctionSummary* g = table.find(callee);
        if (g == nullptr) continue;
        const std::size_t argc = std::min(args.size(), g->param_flags.size());
        for (std::size_t j = 0; j < argc; ++j) {
          const ParamSummary& effect = g->param_flags[j];
          if (effect.deref_unguarded) {
            const std::size_t k = out.param_index(base_identifier(args[j]));
            if (k != FunctionSummary::npos &&
                state.unguarded_params.count(out.params[k])) {
              out.param_flags[k].deref_unguarded = true;
            }
          }
          if (effect.alloc_size_unguarded) {
            for (const std::string& id : argument_identifiers(args[j])) {
              const std::size_t k = out.param_index(id);
              if (k != FunctionSummary::npos && !state.bound_guarded.count(id)) {
                out.param_flags[k].alloc_size_unguarded = true;
              }
            }
          }
        }
      }

      // Fresh-allocation returns: `return malloc(n)`, `return wrapper(n)`,
      // or `return p` where p ever held a fresh allocation.
      if (!stmt.tokens.empty() && stmt.tokens.front().text == "return") {
        for (const std::string& callee : facts.calls) {
          if (is_allocator(callee)) out.returns_fresh_alloc = true;
          const FunctionSummary* g = table.find(callee);
          if (g != nullptr && g->returns_fresh_alloc) {
            out.returns_fresh_alloc = true;
          }
        }
        if (stmt.tokens.size() >= 2 &&
            stmt.tokens[1].kind == lang::TokenKind::kIdentifier &&
            alloc_vars.count(stmt.tokens[1].text)) {
          out.returns_fresh_alloc = true;
        }
      }

      advance(state, facts);
    }
  }
  return out;
}

}  // namespace

std::size_t FunctionSummary::param_index(std::string_view name) const {
  if (name.empty()) return npos;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i] == name) return i;
  }
  return npos;
}

bool FunctionSummary::flagged() const {
  if (returns_fresh_alloc) return true;
  return std::any_of(param_flags.begin(), param_flags.end(),
                     [](const ParamSummary& p) { return p.any(); });
}

std::string FunctionSummary::signature() const {
  std::string out;
  if (returns_fresh_alloc) out += "ret=alloc";
  for (std::size_t i = 0; i < param_flags.size(); ++i) {
    const ParamSummary& p = param_flags[i];
    if (!p.any()) continue;
    if (!out.empty()) out += ' ';
    out += 'p';
    out += std::to_string(i);
    out += '=';
    if (p.deref_unguarded) out += "DU";
    if (p.freed) out += 'F';
    if (p.alloc_size_unguarded) out += 'S';
  }
  return out;
}

const FunctionSummary* SummaryTable::find(std::string_view name) const {
  const auto it = by_function.find(std::string(name));
  return it == by_function.end() ? nullptr : &it->second;
}

std::size_t SummaryTable::flagged_count() const {
  std::size_t count = 0;
  for (const auto& [name, summary] : by_function) count += summary.flagged();
  return count;
}

StatementFacts augment_facts(const StatementFacts& facts,
                             const SummaryTable& table) {
  StatementFacts out = facts;
  bool calls_fresh_alloc = false;
  for (std::size_t c = 0; c < facts.calls.size(); ++c) {
    const FunctionSummary* g = table.find(facts.calls[c]);
    if (g == nullptr) continue;
    if (g->returns_fresh_alloc) calls_fresh_alloc = true;
    const std::vector<std::string>& args = facts.call_args[c];
    const std::size_t argc = std::min(args.size(), g->param_flags.size());
    for (std::size_t j = 0; j < argc; ++j) {
      if (!g->param_flags[j].freed) continue;
      const std::string base = base_identifier(args[j]);
      if (!base.empty()) out.freed.insert(base);
    }
  }
  if (calls_fresh_alloc) {
    // Mirror the direct-allocator rule in facts_for: the assigned (or
    // declared-and-initialized) variables now hold a fresh allocation.
    for (const std::string& d : out.defs) out.alloc_defs.insert(d);
    for (const std::string& d : out.decls) {
      if (out.defs.count(d)) out.alloc_defs.insert(d);
    }
  }
  return out;
}

DataflowResult analyze_dataflow(const Cfg& cfg, const SummaryTable& table) {
  DataflowResult result;
  result.facts = statement_facts(cfg);
  for (std::vector<StatementFacts>& block : result.facts) {
    for (StatementFacts& facts : block) facts = augment_facts(facts, table);
  }
  return resolve_dataflow(cfg, std::move(result));
}

SummaryTable compute_summaries(const std::vector<Cfg>& cfgs,
                               const CallGraph& graph) {
  SummaryTable table;
  for (const Cfg& cfg : cfgs) {
    FunctionSummary seed;
    seed.params = cfg.params;
    seed.param_flags.resize(cfg.params.size());
    table.by_function.try_emplace(cfg.function, std::move(seed));
  }

  // Bottom-up over the condensation: callee SCCs are already final when
  // a caller SCC starts, so only intra-SCC recursion needs iteration.
  for (const std::vector<std::size_t>& scc : graph.sccs) {
    bool changed = true;
    std::size_t sweeps = 0;
    while (changed && sweeps < kMaxSweeps) {
      changed = false;
      ++sweeps;
      ++table.iterations;
      for (std::size_t v : scc) {
        if (v >= cfgs.size()) continue;
        const Cfg& cfg = cfgs[v];
        // Duplicate names share one slot (first definition wins, matching
        // the call graph's name table); only that definition is swept.
        if (graph.index_of(cfg.function) != v) continue;
        FunctionSummary next = summarize_function(cfg, table);
        FunctionSummary& current = table.by_function[cfg.function];
        if (next != current) {
          current = std::move(next);
          changed = true;
        }
      }
    }
  }

  PATCHDB_COUNTER_ADD("analysis.interproc.summary_iterations", table.iterations);
  PATCHDB_COUNTER_ADD("analysis.interproc.flagged_summaries",
                      table.flagged_count());
  return table;
}

SummaryTable compute_summaries(const std::vector<Cfg>& cfgs) {
  return compute_summaries(cfgs, build_call_graph(cfgs));
}

}  // namespace patchdb::analysis
