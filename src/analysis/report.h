// Human-readable rendering of a PatchAnalysis: the `patchdb analyze`
// output. Kept separate from analyze.h so library users embedding the
// analyzer do not pull in the table renderer.
#pragma once

#include <string>

#include "analysis/analyze.h"

namespace patchdb::analysis {

struct ReportOptions {
  bool show_diagnostics = true;   // list resolved/introduced findings
  bool show_cfg_summary = true;   // per-side block/edge/complexity totals
  bool show_unchanged = false;    // also list diagnostics present on both sides
};

std::string render_report(const PatchAnalysis& analysis,
                          const ReportOptions& options = {});

}  // namespace patchdb::analysis
