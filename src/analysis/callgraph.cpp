#include "analysis/callgraph.h"

#include <algorithm>

#include "obs/metrics.h"

namespace patchdb::analysis {

namespace {

/// Iterative Tarjan SCC over the call adjacency. Emission order is the
/// property the summary pass relies on: an SCC is completed only after
/// every SCC it calls into has been emitted, so the output list is
/// bottom-up (callees first).
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<std::size_t>>& succs)
      : succs_(succs),
        index_(succs.size(), kUnvisited),
        lowlink_(succs.size(), 0),
        on_stack_(succs.size(), false) {}

  std::vector<std::vector<std::size_t>> run() {
    for (std::size_t v = 0; v < succs_.size(); ++v) {
      if (index_[v] == kUnvisited) visit(v);
    }
    return std::move(sccs_);
  }

 private:
  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  struct Frame {
    std::size_t node;
    std::size_t next_succ = 0;  // resume point into succs_[node]
  };

  void visit(std::size_t root) {
    std::vector<Frame> frames;
    frames.push_back({root});
    open(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.node;
      if (frame.next_succ < succs_[v].size()) {
        const std::size_t w = succs_[v][frame.next_succ++];
        if (index_[w] == kUnvisited) {
          open(w);
          frames.push_back({w});
        } else if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
        continue;
      }
      if (lowlink_[v] == index_[v]) {
        std::vector<std::size_t> scc;
        std::size_t w;
        do {
          w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          scc.push_back(w);
        } while (w != v);
        std::sort(scc.begin(), scc.end());
        sccs_.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink_[frames.back().node] =
            std::min(lowlink_[frames.back().node], lowlink_[v]);
      }
    }
  }

  void open(std::size_t v) {
    index_[v] = next_index_;
    lowlink_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const std::vector<std::vector<std::size_t>>& succs_;
  std::vector<std::size_t> index_;
  std::vector<std::size_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::size_t> stack_;
  std::size_t next_index_ = 0;
  std::vector<std::vector<std::size_t>> sccs_;
};

}  // namespace

std::size_t CallGraph::edge_count() const noexcept {
  std::size_t edges = 0;
  for (const std::vector<std::size_t>& s : succs) edges += s.size();
  return edges;
}

std::size_t CallGraph::recursive_scc_count() const noexcept {
  std::size_t count = 0;
  for (const std::vector<std::size_t>& scc : sccs) {
    if (scc.size() > 1) {
      ++count;
      continue;
    }
    const std::size_t v = scc.front();
    const std::vector<std::size_t>& s = succs[v];
    count += std::find(s.begin(), s.end(), v) != s.end();
  }
  return count;
}

std::size_t CallGraph::index_of(std::string_view name) const {
  const auto it = by_name.find(std::string(name));
  return it == by_name.end() ? npos : it->second;
}

CallGraph build_call_graph(const std::vector<Cfg>& cfgs,
                           const std::vector<DataflowResult>& dataflows) {
  CallGraph graph;
  graph.nodes.resize(cfgs.size());
  graph.succs.resize(cfgs.size());
  graph.preds.resize(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    graph.nodes[i].name = cfgs[i].function;
    graph.by_name.try_emplace(cfgs[i].function, i);
  }

  for (std::size_t i = 0; i < cfgs.size() && i < dataflows.size(); ++i) {
    for (const std::vector<StatementFacts>& block : dataflows[i].facts) {
      for (const StatementFacts& facts : block) {
        for (const std::string& callee : facts.calls) {
          const std::size_t j = graph.index_of(callee);
          if (j == CallGraph::npos) {
            ++graph.unresolved_calls;
            continue;
          }
          ++graph.call_sites;
          std::vector<std::size_t>& out = graph.succs[i];
          if (std::find(out.begin(), out.end(), j) == out.end()) {
            out.push_back(j);
            graph.preds[j].push_back(i);
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    graph.nodes[i].fan_out = graph.succs[i].size();
    graph.nodes[i].fan_in = graph.preds[i].size();
  }

  graph.sccs = TarjanScc(graph.succs).run();
  for (std::size_t c = 0; c < graph.sccs.size(); ++c) {
    for (std::size_t v : graph.sccs[c]) graph.nodes[v].scc = c;
  }

  PATCHDB_COUNTER_ADD("analysis.interproc.call_edges", graph.edge_count());
  PATCHDB_COUNTER_ADD("analysis.interproc.unresolved_calls",
                      graph.unresolved_calls);
  PATCHDB_COUNTER_ADD("analysis.interproc.sccs", graph.sccs.size());
  return graph;
}

CallGraph build_call_graph(const std::vector<Cfg>& cfgs) {
  std::vector<DataflowResult> dataflows;
  dataflows.reserve(cfgs.size());
  for (const Cfg& cfg : cfgs) dataflows.push_back(analyze_dataflow(cfg));
  return build_call_graph(cfgs, dataflows);
}

}  // namespace patchdb::analysis
