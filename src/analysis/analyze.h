// Whole-file and whole-patch analysis: run the CFG construction and the
// checker registry over a source fragment, and — the patch-level payoff
// — over both the BEFORE and AFTER version of every patched file,
// diffing the two diagnostic sets. A diagnostic present before and gone
// after is *resolved* (the patch fixed that defect shape); one present
// only after is *introduced*. The deltas feed the 12 semantic feature
// dimensions (feature/features.h, FeatureSpace::kSemantic) and the
// Table V categorizer tie-breaks.
//
// The opt-in interprocedural mode (AnalyzeOptions::interproc) layers the
// call graph and function summaries (callgraph.h, summary.h) on top:
// checkers see through call boundaries, and each side's report carries
// call-graph shape and summary statistics whose BEFORE/AFTER deltas feed
// the FeatureSpace::kInterproc tier. The default mode is bit-identical
// to the intraprocedural analysis.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/checkers.h"
#include "diff/patch.h"

namespace patchdb::analysis {

struct AnalyzeOptions {
  bool interproc = false;  // call-graph + summary-aware checkers
};

/// Call-graph and summary statistics of one analyzed side (filled only
/// when AnalyzeOptions::interproc is set).
struct InterprocStats {
  std::size_t functions = 0;
  std::size_t call_edges = 0;        // deduplicated resolved edges
  std::size_t call_sites = 0;        // resolved call sites, with repeats
  std::size_t unresolved_calls = 0;  // callee not defined in the fragment
  std::size_t sccs = 0;
  std::size_t recursive_sccs = 0;    // multi-member, or self-recursive
  std::size_t summary_iterations = 0;
  std::size_t flagged_summaries = 0;  // functions with any summary bit set
  /// function -> compact summary signature (summary.h); "" when clean.
  /// Keyed diffing of the two sides yields the summary-change count.
  std::map<std::string, std::string> summary_signatures;
  /// function -> (fan-in, fan-out) in the side's call graph.
  std::map<std::string, std::pair<std::size_t, std::size_t>> fan;
};

/// Analysis of one source fragment (one version of one or more files).
struct FileReport {
  std::vector<Cfg> cfgs;
  std::vector<Diagnostic> diagnostics;
  std::size_t blocks = 0;      // totals across cfgs
  std::size_t edges = 0;
  std::size_t cyclomatic = 0;  // sum of per-function complexity
  InterprocStats interproc;    // zeroed unless the interproc mode ran
};

FileReport analyze_source(std::string_view source);
FileReport analyze_source(std::string_view source, const AnalyzeOptions& options);

/// Patch-level result: BEFORE vs AFTER reports plus their diff.
struct PatchAnalysis {
  FileReport before;
  FileReport after;
  std::vector<Diagnostic> resolved;    // in BEFORE, absent in AFTER
  std::vector<Diagnostic> introduced;  // in AFTER, absent in BEFORE
  std::array<std::size_t, kCheckerCount> resolved_by_checker{};
  std::array<std::size_t, kCheckerCount> introduced_by_checker{};
  // CFG shape deltas, AFTER minus BEFORE (signed).
  long net_blocks = 0;
  long net_edges = 0;
  long net_cyclomatic = 0;

  // --- interprocedural deltas (valid only when `interproc` is set).
  bool interproc = false;
  long net_call_edges = 0;        // AFTER minus BEFORE resolved call edges
  std::size_t summary_changes = 0;  // functions whose summary signature moved
  std::size_t changed_fan_in = 0;   // total fan-in of changed functions
  std::size_t changed_fan_out = 0;  // total fan-out of changed functions
};

/// Analyze two explicit versions of the same code.
PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source);
PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source,
                               const AnalyzeOptions& options);

/// Reconstruct the BEFORE (context + removed) and AFTER (context + added)
/// fragments of every C/C++ file in the patch and analyze both sides.
PatchAnalysis analyze_patch(const diff::Patch& patch);
PatchAnalysis analyze_patch(const diff::Patch& patch, const AnalyzeOptions& options);

/// The BEFORE or AFTER fragment of one file diff, as analyze_patch sees
/// it (exposed for tests and the CLI).
std::string reconstruct_fragment(const diff::FileDiff& file_diff, bool after);

}  // namespace patchdb::analysis
