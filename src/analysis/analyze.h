// Whole-file and whole-patch analysis: run the CFG construction and the
// checker registry over a source fragment, and — the patch-level payoff
// — over both the BEFORE and AFTER version of every patched file,
// diffing the two diagnostic sets. A diagnostic present before and gone
// after is *resolved* (the patch fixed that defect shape); one present
// only after is *introduced*. The deltas feed the 12 semantic feature
// dimensions (feature/features.h, FeatureSpace::kSemantic) and the
// Table V categorizer tie-breaks.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/checkers.h"
#include "diff/patch.h"

namespace patchdb::analysis {

/// Analysis of one source fragment (one version of one or more files).
struct FileReport {
  std::vector<Cfg> cfgs;
  std::vector<Diagnostic> diagnostics;
  std::size_t blocks = 0;      // totals across cfgs
  std::size_t edges = 0;
  std::size_t cyclomatic = 0;  // sum of per-function complexity
};

FileReport analyze_source(std::string_view source);

/// Patch-level result: BEFORE vs AFTER reports plus their diff.
struct PatchAnalysis {
  FileReport before;
  FileReport after;
  std::vector<Diagnostic> resolved;    // in BEFORE, absent in AFTER
  std::vector<Diagnostic> introduced;  // in AFTER, absent in BEFORE
  std::array<std::size_t, kCheckerCount> resolved_by_checker{};
  std::array<std::size_t, kCheckerCount> introduced_by_checker{};
  // CFG shape deltas, AFTER minus BEFORE (signed).
  long net_blocks = 0;
  long net_edges = 0;
  long net_cyclomatic = 0;
};

/// Analyze two explicit versions of the same code.
PatchAnalysis analyze_versions(std::string_view before_source,
                               std::string_view after_source);

/// Reconstruct the BEFORE (context + removed) and AFTER (context + added)
/// fragments of every C/C++ file in the patch and analyze both sides.
PatchAnalysis analyze_patch(const diff::Patch& patch);

/// The BEFORE or AFTER fragment of one file diff, as analyze_patch sees
/// it (exposed for tests and the CLI).
std::string reconstruct_fragment(const diff::FileDiff& file_diff, bool after);

}  // namespace patchdb::analysis
