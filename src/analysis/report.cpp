#include "analysis/report.h"

#include <map>

#include "util/table.h"

namespace patchdb::analysis {

namespace {

std::map<std::size_t, std::size_t> count_by_checker(
    const std::vector<Diagnostic>& diagnostics) {
  std::map<std::size_t, std::size_t> counts;
  for (const Diagnostic& d : diagnostics) {
    ++counts[static_cast<std::size_t>(d.checker)];
  }
  return counts;
}

void append_diagnostic_lines(std::string& out, const std::vector<Diagnostic>& list,
                             std::string_view marker) {
  for (const Diagnostic& d : list) {
    out += "  ";
    out += marker;
    out += ' ';
    out += checker_name(d.checker);
    out += "  ";
    out += d.function;
    out += ':';
    out += std::to_string(d.line);
    out += "  ";
    out += d.message;
    out += '\n';
  }
}

}  // namespace

std::string render_report(const PatchAnalysis& analysis, const ReportOptions& options) {
  std::string out;

  util::Table table("semantic checker diff (BEFORE -> AFTER)");
  table.set_header({"Checker", "Before", "After", "Resolved", "Introduced"});
  const auto before = count_by_checker(analysis.before.diagnostics);
  const auto after = count_by_checker(analysis.after.diagnostics);
  for (const CheckerInfo& info : checkers()) {
    const std::size_t c = static_cast<std::size_t>(info.id);
    const auto count_in = [c](const std::map<std::size_t, std::size_t>& counts) {
      const auto it = counts.find(c);
      return it == counts.end() ? std::size_t{0} : it->second;
    };
    table.add_row({std::string(info.name), std::to_string(count_in(before)),
                   std::to_string(count_in(after)),
                   std::to_string(analysis.resolved_by_checker[c]),
                   std::to_string(analysis.introduced_by_checker[c])});
  }
  out += table.render();

  if (options.show_cfg_summary) {
    out += "  control flow: ";
    out += std::to_string(analysis.before.cfgs.size());
    out += " -> ";
    out += std::to_string(analysis.after.cfgs.size());
    out += " functions, ";
    out += std::to_string(analysis.before.blocks);
    out += " -> ";
    out += std::to_string(analysis.after.blocks);
    out += " blocks, ";
    out += std::to_string(analysis.before.edges);
    out += " -> ";
    out += std::to_string(analysis.after.edges);
    out += " edges, cyclomatic ";
    out += std::to_string(analysis.before.cyclomatic);
    out += " -> ";
    out += std::to_string(analysis.after.cyclomatic);
    out += '\n';
  }

  if (analysis.interproc) {
    out += "  call graph: ";
    out += std::to_string(analysis.before.interproc.call_edges);
    out += " -> ";
    out += std::to_string(analysis.after.interproc.call_edges);
    out += " edges (";
    if (analysis.net_call_edges >= 0) out += '+';
    out += std::to_string(analysis.net_call_edges);
    out += "), ";
    out += std::to_string(analysis.before.interproc.sccs);
    out += " -> ";
    out += std::to_string(analysis.after.interproc.sccs);
    out += " sccs (";
    out += std::to_string(analysis.after.interproc.recursive_sccs);
    out += " recursive), ";
    out += std::to_string(analysis.before.interproc.unresolved_calls);
    out += " -> ";
    out += std::to_string(analysis.after.interproc.unresolved_calls);
    out += " unresolved calls\n";
    out += "  summaries: ";
    out += std::to_string(analysis.before.interproc.flagged_summaries);
    out += " -> ";
    out += std::to_string(analysis.after.interproc.flagged_summaries);
    out += " flagged, ";
    out += std::to_string(analysis.summary_changes);
    out += " changed by the patch; changed functions carry fan-in ";
    out += std::to_string(analysis.changed_fan_in);
    out += ", fan-out ";
    out += std::to_string(analysis.changed_fan_out);
    out += '\n';
  }

  if (options.show_diagnostics) {
    if (!analysis.resolved.empty()) {
      out += "resolved by this patch:\n";
      append_diagnostic_lines(out, analysis.resolved, "-");
    }
    if (!analysis.introduced.empty()) {
      out += "introduced by this patch:\n";
      append_diagnostic_lines(out, analysis.introduced, "+");
    }
    if (analysis.resolved.empty() && analysis.introduced.empty()) {
      out += "no checker-visible change between BEFORE and AFTER\n";
    }
  }

  if (options.show_unchanged) {
    out += "still present after the patch:\n";
    std::map<std::string, bool> introduced_keys;
    for (const Diagnostic& d : analysis.introduced) introduced_keys[d.key()] = true;
    std::vector<Diagnostic> unchanged;
    for (const Diagnostic& d : analysis.after.diagnostics) {
      if (introduced_keys.find(d.key()) == introduced_keys.end()) {
        unchanged.push_back(d);
      }
    }
    append_diagnostic_lines(out, unchanged, "=");
  }

  return out;
}

}  // namespace patchdb::analysis
