// Dataflow over the CFG: per-statement def/use fact extraction plus the
// iterative fixpoint passes the checkers consume. All facts are variable
// names (strings) — the same level of abstraction the paper's 60
// features work at, but now path-aware: "x was freed and not reassigned
// on some path reaching this use", "p was never null-tested before this
// dereference", and so on.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.h"

namespace patchdb::analysis {

using FactSet = std::set<std::string>;

/// Security-relevant facts of one statement, recovered from its tokens.
struct StatementFacts {
  FactSet defs;          // variables assigned (=, compound assign, ++/--)
  FactSet uses;          // identifiers read (excludes call names and decl types)
  FactSet decls;         // variables declared here
  FactSet decls_uninit;  // declared without an initializer
  FactSet derefs;        // *p, p->f, p[i] dereference the pointer p
  FactSet index_vars;    // buf[i]: the index expression's variables (i)
  FactSet freed;         // arguments of free-like calls
  FactSet alloc_defs;    // x = malloc/kmalloc/strdup/... : x
  FactSet addr_taken;    // &x (x may be initialized through the pointer)
  FactSet null_tested;   // condition: x == NULL, !x, if (x), assert(x)
  FactSet bound_tested;  // condition: x < n, n >= len, ... (both sides)
  std::vector<std::string> calls;  // called function names, in order
  /// Single-spaced text of each argument of each call, aligned with `calls`.
  std::vector<std::vector<std::string>> call_args;
};

StatementFacts facts_for(const Statement& stmt);

/// Per-block fact sets at block entry (index = block id). Exit sets are
/// recomputed on demand by replaying the block's statements.
struct FlowSets {
  std::vector<FactSet> entry;
};

/// Everything the checkers need for one function.
struct DataflowResult {
  /// facts[block][statement] aligned with cfg.blocks[b].statements.
  std::vector<std::vector<StatementFacts>> facts;
  FlowSets maybe_uninit;     // declared, no assignment yet on some path
  FlowSets maybe_freed;      // freed, not reassigned, on some path
  FlowSets unchecked_alloc;  // allocation result never null-tested yet
  FlowSets unguarded_params; // pointer params with no null test yet
  FlowSets bound_guarded;    // vars constrained by a relational condition
  /// Classic backward liveness: variables live at block exit.
  std::vector<FactSet> live_out;
};

DataflowResult analyze_dataflow(const Cfg& cfg);

/// Per-statement facts of every block, aligned with cfg.blocks (the
/// first half of analyze_dataflow, exposed so interprocedural callers
/// can enrich the facts before solving).
std::vector<std::vector<StatementFacts>> statement_facts(const Cfg& cfg);

/// Run the fixpoint passes over already-populated (possibly enriched)
/// facts; `partial.facts` must be aligned with cfg.blocks. The second
/// half of analyze_dataflow.
DataflowResult resolve_dataflow(const Cfg& cfg, DataflowResult partial);

/// The five forward sets as a block-local cursor: checkers replay a
/// block statement-by-statement, inspecting the state *before* each
/// statement, using exactly the transfer functions the solver used.
struct FlowState {
  FactSet maybe_uninit;
  FactSet maybe_freed;
  FactSet unchecked_alloc;
  FactSet unguarded_params;
  FactSet bound_guarded;
};

FlowState state_at_entry(const DataflowResult& dataflow, std::size_t block);
void advance(FlowState& state, const StatementFacts& facts);

/// Vocabulary shared by the fact extractor, the checkers, and the
/// interprocedural summary pass.
bool is_allocator(std::string_view name);
bool is_deallocator(std::string_view name);

/// Allocation-size argument position of a raw allocator; -1 when `name`
/// is not one (calloc is excluded: its two-argument form is the fix).
int alloc_size_arg(std::string_view name);

}  // namespace patchdb::analysis
