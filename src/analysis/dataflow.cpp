#include "analysis/dataflow.h"

#include <algorithm>
#include <deque>
#include <string_view>

#include "lang/lexer.h"
#include "lang/taxonomy.h"

namespace patchdb::analysis {

namespace {

bool is_assert_fn(std::string_view name) {
  static constexpr std::string_view kAssert[] = {
      "assert", "ASSERT", "BUG_ON", "WARN_ON", "CHECK", "g_assert",
  };
  return std::find(std::begin(kAssert), std::end(kAssert), name) != std::end(kAssert);
}

bool is_relational(std::string_view op) {
  return op == "<" || op == ">" || op == "<=" || op == ">=";
}

bool is_null_literal(std::string_view text) {
  return text == "NULL" || text == "nullptr" || text == "0";
}

/// True when the token before index `i` puts a prefix operator ('*', '&',
/// '!') in unary position.
bool unary_position(const std::vector<lang::Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const lang::Token& prev = toks[i - 1];
  if (prev.kind == lang::TokenKind::kOperator) return true;
  if (prev.kind == lang::TokenKind::kKeyword) return prev.text == "return";
  return prev.text == "(" || prev.text == "," || prev.text == ";" ||
         prev.text == "[" || prev.text == "{";
}

constexpr std::string_view kDeclKeywords[] = {
    "int",   "char",   "long",     "short",  "float", "double", "bool",
    "void",  "unsigned", "signed", "struct", "union", "enum",   "const",
    "static", "register", "volatile", "auto",
};

constexpr std::string_view kDeclTypedefs[] = {
    "size_t", "ssize_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t",  "u8",       "u16",
    "u32",    "u64",     "s8",      "s16",      "s32",      "s64",
    "uintptr_t", "intptr_t", "off_t", "FILE",
};

bool is_decl_starter(const lang::Token& t) {
  if (t.kind == lang::TokenKind::kKeyword) {
    return std::find(std::begin(kDeclKeywords), std::end(kDeclKeywords), t.text) !=
           std::end(kDeclKeywords);
  }
  if (t.kind == lang::TokenKind::kIdentifier) {
    return std::find(std::begin(kDeclTypedefs), std::end(kDeclTypedefs), t.text) !=
           std::end(kDeclTypedefs);
  }
  return false;
}

/// Extract declared variables from a declaration statement: names of the
/// declarators, split into initialized and uninitialized. Array
/// declarators are excluded from the uninitialized set (an array is
/// usually filled element-wise, not assigned whole).
void scan_declaration(const std::vector<lang::Token>& toks, StatementFacts& facts) {
  // Skip the leading type tokens (keywords, typedef names, '*').
  std::size_t i = 0;
  while (i < toks.size() &&
         (is_decl_starter(toks[i]) || toks[i].text == "*")) {
    ++i;
  }
  // Declarators: ident [= init] [, ident ...] ;
  while (i < toks.size()) {
    if (toks[i].kind != lang::TokenKind::kIdentifier) break;
    const std::string& name = toks[i].text;
    std::size_t j = i + 1;
    bool is_array = false;
    std::size_t depth = 0;
    bool initialized = false;
    for (; j < toks.size(); ++j) {
      const std::string& text = toks[j].text;
      if (text == "(" || text == "[" || text == "{") {
        if (text == "[" && depth == 0) is_array = true;
        ++depth;
        continue;
      }
      if (text == ")" || text == "]" || text == "}") {
        if (depth > 0) --depth;
        continue;
      }
      if (depth > 0) continue;
      if (text == "=") initialized = true;
      if (text == ",") break;
      if (text == ";") break;
    }
    facts.decls.insert(name);
    if (initialized) {
      facts.defs.insert(name);
    } else if (!is_array) {
      facts.decls_uninit.insert(name);
    }
    if (j < toks.size() && toks[j].text == ",") {
      i = j + 1;
      while (i < toks.size() && toks[i].text == "*") ++i;
      continue;
    }
    break;
  }
}

FactSet union_of(const FactSet& a, const FactSet& b) {
  FactSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

bool merge_into(FactSet& into, const FactSet& from) {
  const std::size_t before = into.size();
  into.insert(from.begin(), from.end());
  return into.size() != before;
}

/// Transfer function: (set − kill) ∪ gen applied in an order chosen per
/// pass (gen_first handles `if (!(p = malloc(n)))`, where the allocation
/// and its null test share one statement).
void apply(FactSet& set, const FactSet& gen, const FactSet& kill, bool gen_first) {
  if (gen_first) {
    set.insert(gen.begin(), gen.end());
    for (const std::string& k : kill) set.erase(k);
  } else {
    for (const std::string& k : kill) set.erase(k);
    set.insert(gen.begin(), gen.end());
  }
}

struct PassSpec {
  // gen/kill as a function of the statement facts.
  FactSet (*gen)(const StatementFacts&);
  FactSet (*kill)(const StatementFacts&);
  bool gen_first = false;
};

FlowSets solve_forward(const Cfg& cfg,
                       const std::vector<std::vector<StatementFacts>>& facts,
                       const PassSpec& pass, const FactSet& entry_seed) {
  FlowSets sets;
  sets.entry.resize(cfg.blocks.size());
  sets.entry[Cfg::kEntry] = entry_seed;

  auto exit_of = [&](std::size_t b) {
    FactSet set = sets.entry[b];
    for (const StatementFacts& f : facts[b]) {
      apply(set, pass.gen(f), pass.kill(f), pass.gen_first);
    }
    return set;
  };

  std::deque<std::size_t> worklist;
  for (const BasicBlock& block : cfg.blocks) worklist.push_back(block.id);
  while (!worklist.empty()) {
    const std::size_t b = worklist.front();
    worklist.pop_front();
    const FactSet out = exit_of(b);
    for (std::size_t succ : cfg.blocks[b].succs) {
      if (merge_into(sets.entry[succ], out)) worklist.push_back(succ);
    }
  }
  return sets;
}

// --- pass gen/kill definitions -----------------------------------------

FactSet gen_uninit(const StatementFacts& f) { return f.decls_uninit; }
FactSet kill_uninit(const StatementFacts& f) {
  return union_of(f.defs, f.addr_taken);
}

FactSet gen_freed(const StatementFacts& f) { return f.freed; }
FactSet kill_freed(const StatementFacts& f) {
  return union_of(f.defs, f.alloc_defs);
}

FactSet gen_unchecked(const StatementFacts& f) { return f.alloc_defs; }
FactSet kill_unchecked(const StatementFacts& f) {
  FactSet kill = f.null_tested;
  for (const std::string& d : f.defs) {
    if (f.alloc_defs.count(d) == 0) kill.insert(d);
  }
  return kill;
}

FactSet gen_nothing(const StatementFacts&) { return {}; }
FactSet kill_params(const StatementFacts& f) {
  return union_of(f.null_tested, f.defs);
}

FactSet gen_guarded(const StatementFacts& f) { return f.bound_tested; }
FactSet kill_guarded(const StatementFacts& f) {
  FactSet kill;
  for (const std::string& d : f.defs) {
    if (f.bound_tested.count(d) == 0) kill.insert(d);
  }
  return kill;
}

}  // namespace

bool is_allocator(std::string_view name) {
  static constexpr std::string_view kAlloc[] = {
      "malloc",  "calloc",  "realloc", "strdup",   "strndup",  "kmalloc",
      "kzalloc", "kcalloc", "vmalloc", "xmalloc",  "g_malloc", "av_malloc",
      "OPENSSL_malloc", "alloca",
  };
  return std::find(std::begin(kAlloc), std::end(kAlloc), name) != std::end(kAlloc);
}

bool is_deallocator(std::string_view name) {
  static constexpr std::string_view kFree[] = {
      "free", "kfree", "kvfree", "vfree", "g_free", "xfree", "av_free",
      "OPENSSL_free",
  };
  return std::find(std::begin(kFree), std::end(kFree), name) != std::end(kFree);
}

int alloc_size_arg(std::string_view name) {
  if (name == "malloc" || name == "vmalloc" || name == "xmalloc" ||
      name == "alloca" || name == "g_malloc" || name == "OPENSSL_malloc") {
    return 0;
  }
  if (name == "kmalloc" || name == "kzalloc") return 0;
  if (name == "realloc") return 1;
  return -1;
}

StatementFacts facts_for(const Statement& stmt) {
  StatementFacts facts;
  const std::vector<lang::Token>& toks = stmt.tokens;

  // --- calls and their arguments.
  std::vector<bool> is_call_name(toks.size(), false);
  std::vector<bool> is_field_name(toks.size(), false);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const lang::Token& t = toks[i];
    if (i > 0 && (toks[i - 1].text == "->" || toks[i - 1].text == ".") &&
        t.kind == lang::TokenKind::kIdentifier &&
        (i + 1 >= toks.size() || toks[i + 1].text != "(")) {
      is_field_name[i] = true;
    }
    if (t.kind != lang::TokenKind::kIdentifier || i + 1 >= toks.size() ||
        toks[i + 1].text != "(") {
      continue;
    }
    is_call_name[i] = true;
    facts.calls.push_back(t.text);
    // Split the argument list at depth-1 commas.
    std::vector<std::string> args;
    std::string current;
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& text = toks[j].text;
      if (text == "(" || text == "[" || text == "{") {
        ++depth;
        if (depth == 1) continue;
      } else if (text == ")" || text == "]" || text == "}") {
        if (depth == 0) break;
        --depth;
        if (depth == 0) break;
      } else if (text == "," && depth == 1) {
        if (!current.empty()) args.push_back(current);
        current.clear();
        continue;
      }
      if (depth >= 1) {
        if (!current.empty()) current += ' ';
        current += text;
      }
    }
    if (!current.empty()) args.push_back(current);
    facts.call_args.push_back(std::move(args));
  }

  // --- free / assert-style calls.
  for (std::size_t c = 0; c < facts.calls.size(); ++c) {
    const std::string& name = facts.calls[c];
    if (is_deallocator(name) && !facts.call_args[c].empty()) {
      // Base identifier of the first argument.
      const std::vector<lang::Token> arg = lang::lex(facts.call_args[c][0]);
      for (const lang::Token& t : arg) {
        if (t.kind == lang::TokenKind::kIdentifier) {
          facts.freed.insert(t.text);
          break;
        }
      }
    }
    if (is_assert_fn(name)) {
      for (const std::string& arg : facts.call_args[c]) {
        for (const lang::Token& t : lang::lex(arg)) {
          if (t.kind == lang::TokenKind::kIdentifier && !lang::is_keyword(t.text)) {
            facts.null_tested.insert(t.text);
            facts.bound_tested.insert(t.text);
          }
        }
      }
    }
  }

  // --- declarations.
  const bool looks_like_decl =
      !stmt.is_condition && !toks.empty() &&
      (is_decl_starter(toks[0]) ||
       (toks.size() >= 3 && toks[0].kind == lang::TokenKind::kIdentifier &&
        toks[1].text == "*" && toks[2].kind == lang::TokenKind::kIdentifier &&
        !is_call_name[0]));
  if (looks_like_decl) scan_declaration(toks, facts);

  // --- assignments, increments, dereferences, address-taking, indexing.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const lang::Token& t = toks[i];
    if (t.kind == lang::TokenKind::kOperator) {
      if (t.text == "*" && i + 1 < toks.size() &&
          toks[i + 1].kind == lang::TokenKind::kIdentifier &&
          unary_position(toks, i) && !looks_like_decl) {
        facts.derefs.insert(toks[i + 1].text);
      }
      if (t.text == "&" && i + 1 < toks.size() &&
          toks[i + 1].kind == lang::TokenKind::kIdentifier &&
          unary_position(toks, i)) {
        facts.addr_taken.insert(toks[i + 1].text);
      }
      if ((t.text == "++" || t.text == "--")) {
        const std::size_t target =
            i + 1 < toks.size() &&
                    toks[i + 1].kind == lang::TokenKind::kIdentifier
                ? i + 1
                : (i > 0 && toks[i - 1].kind == lang::TokenKind::kIdentifier
                       ? i - 1
                       : static_cast<std::size_t>(-1));
        if (target != static_cast<std::size_t>(-1)) {
          facts.defs.insert(toks[target].text);
          facts.uses.insert(toks[target].text);
        }
      }
      if (lang::classify_operator(t.text) == lang::OperatorClass::kAssignment &&
          i > 0) {
        // Walk the left-hand side back to the statement start (or the
        // nearest expression boundary) to find its base identifier.
        std::size_t first = i;
        std::size_t depth = 0;
        while (first > 0) {
          const std::string& text = toks[first - 1].text;
          if (text == "]" || text == ")") {
            ++depth;
          } else if (text == "[" || text == "(") {
            if (depth == 0) break;
            --depth;
          } else if (depth == 0 &&
                     (text == "," || text == ";" || text == "&&" ||
                      text == "||")) {
            break;
          }
          --first;
        }
        std::size_t base = static_cast<std::size_t>(-1);
        for (std::size_t j = first; j < i; ++j) {
          if (toks[j].kind == lang::TokenKind::kIdentifier &&
              !is_decl_starter(toks[j]) && !is_field_name[j]) {
            base = j;
            break;
          }
        }
        if (base != static_cast<std::size_t>(-1)) {
          bool lhs_is_deref = false;
          for (std::size_t j = first; j < i; ++j) {
            const std::string& text = toks[j].text;
            if (text == "->" || text == "[" ||
                (text == "*" && unary_position(toks, j) && !looks_like_decl)) {
              lhs_is_deref = true;
            }
          }
          if (lhs_is_deref) {
            facts.derefs.insert(toks[base].text);
          } else {
            facts.defs.insert(toks[base].text);
          }
          if (t.text != "=") facts.uses.insert(toks[base].text);  // n += x
        }
      }
    }
    if (t.kind == lang::TokenKind::kIdentifier) {
      if (i + 1 < toks.size() &&
          (toks[i + 1].text == "->" || toks[i + 1].text == "[")) {
        facts.derefs.insert(t.text);
      }
      if (toks[i + 1 < toks.size() ? i + 1 : i].text == "[" && i + 1 < toks.size()) {
        // Identifiers inside the brackets are index variables.
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
          const std::string& text = toks[j].text;
          if (text == "[") { ++depth; continue; }
          if (text == "]") {
            if (--depth == 0) break;
            continue;
          }
          if (depth >= 1 && toks[j].kind == lang::TokenKind::kIdentifier &&
              !is_call_name[j] && !is_field_name[j]) {
            facts.index_vars.insert(toks[j].text);
          }
        }
      }
    }
  }

  // --- allocation results: an assignment whose RHS calls an allocator.
  bool calls_alloc = false;
  for (const std::string& name : facts.calls) calls_alloc |= is_allocator(name);
  if (calls_alloc) {
    for (const std::string& d : facts.defs) facts.alloc_defs.insert(d);
    for (const std::string& d : facts.decls) {
      if (facts.defs.count(d)) facts.alloc_defs.insert(d);
    }
  }

  // --- condition tests: null tests and relational bounds.
  if (stmt.is_condition) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const lang::Token& t = toks[i];
      if (t.text == "!" && i + 1 < toks.size() &&
          toks[i + 1].kind == lang::TokenKind::kIdentifier) {
        facts.null_tested.insert(toks[i + 1].text);
      }
      if ((t.text == "==" || t.text == "!=")) {
        const bool lhs_null = i > 0 && is_null_literal(toks[i - 1].text);
        const bool rhs_null = i + 1 < toks.size() && is_null_literal(toks[i + 1].text);
        if (rhs_null && i > 0 && toks[i - 1].kind == lang::TokenKind::kIdentifier) {
          facts.null_tested.insert(toks[i - 1].text);
        }
        if (lhs_null && i + 1 < toks.size() &&
            toks[i + 1].kind == lang::TokenKind::kIdentifier) {
          facts.null_tested.insert(toks[i + 1].text);
        }
      }
      if (t.kind == lang::TokenKind::kIdentifier && !is_call_name[i] &&
          !is_field_name[i]) {
        const bool at_start = i == 0 || toks[i - 1].text == "(" ||
                              toks[i - 1].text == "&&" || toks[i - 1].text == "||";
        const bool at_end = i + 1 >= toks.size() || toks[i + 1].text == ")" ||
                            toks[i + 1].text == "&&" || toks[i + 1].text == "||";
        // A bare truthiness test `if (p)` / `... && p && ...`.
        if (at_start && at_end) facts.null_tested.insert(t.text);
      }
      if (t.kind == lang::TokenKind::kOperator && is_relational(t.text)) {
        // Identifiers on either side of the comparison, up to the nearest
        // logical/bracket boundary, are bound-tested.
        auto scan_side = [&](std::size_t from, bool forward) {
          std::size_t j = from;
          while (j < toks.size()) {
            const std::string& text = toks[j].text;
            if (text == "&&" || text == "||" || text == "(" || text == ")" ||
                text == "," || text == "?") {
              break;
            }
            if (toks[j].kind == lang::TokenKind::kIdentifier && !is_call_name[j]) {
              facts.bound_tested.insert(toks[j].text);
            }
            if (forward) {
              ++j;
            } else {
              if (j == 0) break;
              --j;
            }
          }
        };
        if (i > 0) scan_side(i - 1, false);
        scan_side(i + 1, true);
      }
    }
  }

  // --- uses: every identifier that is not a call name, a field name, a
  // declared type, or the pure LHS of a plain assignment.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const lang::Token& t = toks[i];
    if (t.kind != lang::TokenKind::kIdentifier) continue;
    if (is_call_name[i] || is_field_name[i]) continue;
    if (is_decl_starter(t)) continue;
    facts.uses.insert(t.text);
  }
  for (const std::string& d : facts.decls) facts.uses.erase(d);
  for (const std::string& d : facts.defs) {
    // `x = ...` does not read x unless it also appears on the RHS; the
    // set-based model cannot see double mentions, so treat a plain def
    // as not-a-use (compound assigns re-inserted uses above).
    if (facts.uses.count(d) && facts.decls.count(d) == 0) {
      // Keep the use only if the variable also occurs somewhere beyond
      // the LHS; approximate by counting occurrences.
      std::size_t occurrences = 0;
      for (const lang::Token& tok : toks) occurrences += tok.text == d;
      if (occurrences <= 1) facts.uses.erase(d);
    }
  }

  return facts;
}

std::vector<std::vector<StatementFacts>> statement_facts(const Cfg& cfg) {
  std::vector<std::vector<StatementFacts>> facts(cfg.blocks.size());
  for (const BasicBlock& block : cfg.blocks) {
    facts[block.id].reserve(block.statements.size());
    for (const Statement& stmt : block.statements) {
      facts[block.id].push_back(facts_for(stmt));
    }
  }
  return facts;
}

DataflowResult analyze_dataflow(const Cfg& cfg) {
  DataflowResult result;
  result.facts = statement_facts(cfg);
  return resolve_dataflow(cfg, std::move(result));
}

DataflowResult resolve_dataflow(const Cfg& cfg, DataflowResult result) {
  FactSet params(cfg.pointer_params.begin(), cfg.pointer_params.end());
  result.maybe_uninit =
      solve_forward(cfg, result.facts, {gen_uninit, kill_uninit, false}, {});
  result.maybe_freed =
      solve_forward(cfg, result.facts, {gen_freed, kill_freed, false}, {});
  result.unchecked_alloc = solve_forward(
      cfg, result.facts, {gen_unchecked, kill_unchecked, true}, {});
  result.unguarded_params = solve_forward(
      cfg, result.facts, {gen_nothing, kill_params, false}, params);
  result.bound_guarded =
      solve_forward(cfg, result.facts, {gen_guarded, kill_guarded, false}, {});

  // Backward liveness to a fixpoint (computed after the forward passes).
  result.live_out.resize(cfg.blocks.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = cfg.blocks.size(); b-- > 0;) {
      FactSet out;
      for (std::size_t succ : cfg.blocks[b].succs) {
        // live-in of succ = replay succ backwards from its live-out.
        FactSet live = result.live_out[succ];
        const std::vector<StatementFacts>& facts = result.facts[succ];
        for (std::size_t s = facts.size(); s-- > 0;) {
          for (const std::string& d : facts[s].defs) live.erase(d);
          live.insert(facts[s].uses.begin(), facts[s].uses.end());
        }
        out.insert(live.begin(), live.end());
      }
      if (out != result.live_out[b]) {
        result.live_out[b] = std::move(out);
        changed = true;
      }
    }
  }
  return result;
}

FlowState state_at_entry(const DataflowResult& dataflow, std::size_t block) {
  FlowState state;
  state.maybe_uninit = dataflow.maybe_uninit.entry[block];
  state.maybe_freed = dataflow.maybe_freed.entry[block];
  state.unchecked_alloc = dataflow.unchecked_alloc.entry[block];
  state.unguarded_params = dataflow.unguarded_params.entry[block];
  state.bound_guarded = dataflow.bound_guarded.entry[block];
  return state;
}

void advance(FlowState& state, const StatementFacts& facts) {
  apply(state.maybe_uninit, gen_uninit(facts), kill_uninit(facts), false);
  apply(state.maybe_freed, gen_freed(facts), kill_freed(facts), false);
  apply(state.unchecked_alloc, gen_unchecked(facts), kill_unchecked(facts), true);
  apply(state.unguarded_params, gen_nothing(facts), kill_params(facts), false);
  apply(state.bound_guarded, gen_guarded(facts), kill_guarded(facts), false);
}

}  // namespace patchdb::analysis
