// Myers O(ND) diff between two line sequences, emitted as unified-diff
// hunks with configurable context. The corpus simulator generates
// commits by mutating source files and diffing old vs new — exactly how
// git produces the patches the paper downloads.
#pragma once

#include <string>
#include <vector>

#include "diff/patch.h"

namespace patchdb::diff {

struct DiffOptions {
  std::size_t context = 3;  // context lines around each change, like git
};

/// Compute hunks turning `old_lines` into `new_lines`. Empty result means
/// the files are identical.
std::vector<Hunk> diff_lines(const std::vector<std::string>& old_lines,
                             const std::vector<std::string>& new_lines,
                             const DiffOptions& options = {});

/// Convenience: build a whole FileDiff (kModify, or kCreate/kDelete when
/// one side is empty) for a path.
FileDiff diff_file(const std::string& path, const std::vector<std::string>& old_lines,
                   const std::vector<std::string>& new_lines,
                   const DiffOptions& options = {});

}  // namespace patchdb::diff
