// Patch application and inversion. The synthesizer (Section III-C of
// the paper) reconstructs the BEFORE and AFTER versions of every file a
// patch touches by "rolling back the repository" — here that is applying
// or un-applying the FileDiff to stored file content.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "diff/patch.h"

namespace patchdb::diff {

class ApplyError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Apply one file's hunks to its old content (as lines, no newlines).
/// Context and removed lines must match exactly; throws ApplyError on
/// any mismatch (corrupt patch or wrong base version).
std::vector<std::string> apply_file_diff(const std::vector<std::string>& old_lines,
                                         const FileDiff& fd);

/// Reverse application: reconstruct the old content from the new.
std::vector<std::string> unapply_file_diff(const std::vector<std::string>& new_lines,
                                           const FileDiff& fd);

/// Swap the roles of added and removed lines, producing the inverse patch
/// (apply(invert(p)) undoes apply(p)).
FileDiff invert(const FileDiff& fd);
Patch invert(const Patch& patch);

}  // namespace patchdb::diff
