#include "diff/apply.h"

#include <algorithm>

namespace patchdb::diff {

namespace {

void check_match(const std::vector<std::string>& lines, std::size_t index,
                 const std::string& expected, const char* what) {
  if (index >= lines.size()) {
    throw ApplyError(std::string("patch refers past end of file while matching ") +
                     what);
  }
  if (lines[index] != expected) {
    throw ApplyError(std::string("patch context mismatch at line ") +
                     std::to_string(index + 1) + " (" + what + "): expected '" +
                     expected + "', found '" + lines[index] + "'");
  }
}

}  // namespace

std::vector<std::string> apply_file_diff(const std::vector<std::string>& old_lines,
                                         const FileDiff& fd) {
  std::vector<std::string> out;
  out.reserve(old_lines.size() + fd.hunks.size() * 4);
  std::size_t cursor = 0;  // 0-based index into old_lines

  for (const Hunk& hunk : fd.hunks) {
    // Hunks with old_count == 0 use old_start as "insert after this line".
    const std::size_t hunk_begin =
        hunk.old_count == 0 ? hunk.old_start : hunk.old_start - 1;
    if (hunk_begin < cursor) throw ApplyError("hunks overlap or are unsorted");
    while (cursor < hunk_begin) {
      if (cursor >= old_lines.size()) {
        throw ApplyError("hunk starts past end of file");
      }
      out.push_back(old_lines[cursor++]);
    }
    for (const Line& line : hunk.lines) {
      switch (line.kind) {
        case LineKind::kContext:
          check_match(old_lines, cursor, line.text, "context");
          out.push_back(old_lines[cursor++]);
          break;
        case LineKind::kRemoved:
          check_match(old_lines, cursor, line.text, "removal");
          ++cursor;
          break;
        case LineKind::kAdded:
          out.push_back(line.text);
          break;
      }
    }
  }
  while (cursor < old_lines.size()) out.push_back(old_lines[cursor++]);
  return out;
}

FileDiff invert(const FileDiff& fd) {
  FileDiff inv;
  inv.old_path = fd.new_path;
  inv.new_path = fd.old_path;
  switch (fd.change) {
    case ChangeKind::kCreate: inv.change = ChangeKind::kDelete; break;
    case ChangeKind::kDelete: inv.change = ChangeKind::kCreate; break;
    default: inv.change = fd.change; break;
  }
  inv.index_line = fd.index_line;
  inv.hunks.reserve(fd.hunks.size());
  for (const Hunk& hunk : fd.hunks) {
    Hunk rev;
    rev.old_start = hunk.new_start;
    rev.old_count = hunk.new_count;
    rev.new_start = hunk.old_start;
    rev.new_count = hunk.old_count;
    rev.section = hunk.section;
    rev.lines.reserve(hunk.lines.size());
    // Within each run of -/+ lines git lists removals first; swapping the
    // kinds keeps that property because we also reorder each run.
    std::vector<Line> pending_added;
    auto flush = [&] {
      for (Line& l : pending_added) rev.lines.push_back(std::move(l));
      pending_added.clear();
    };
    for (const Line& line : hunk.lines) {
      switch (line.kind) {
        case LineKind::kContext:
          flush();
          rev.lines.push_back(line);
          break;
        case LineKind::kRemoved:
          // becomes an added line, must come after the new removals
          pending_added.push_back(Line{LineKind::kAdded, line.text});
          break;
        case LineKind::kAdded:
          rev.lines.push_back(Line{LineKind::kRemoved, line.text});
          break;
      }
    }
    flush();
    inv.hunks.push_back(std::move(rev));
  }
  return inv;
}

Patch invert(const Patch& patch) {
  Patch inv = patch;
  inv.message = "Revert \"" +
                (patch.message.empty()
                     ? patch.commit
                     : std::string(patch.message.substr(0, patch.message.find('\n')))) +
                "\"";
  inv.files.clear();
  inv.files.reserve(patch.files.size());
  for (const FileDiff& fd : patch.files) inv.files.push_back(invert(fd));
  return inv;
}

std::vector<std::string> unapply_file_diff(const std::vector<std::string>& new_lines,
                                           const FileDiff& fd) {
  return apply_file_diff(new_lines, invert(fd));
}

}  // namespace patchdb::diff
