#include "diff/filter.h"

#include <algorithm>

namespace patchdb::diff {

FilterStats keep_cpp_only(Patch& patch) {
  FilterStats stats;
  std::vector<FileDiff> kept;
  kept.reserve(patch.files.size());
  for (FileDiff& fd : patch.files) {
    const std::string& path = fd.new_path.empty() ? fd.old_path : fd.new_path;
    if (is_cpp_path(path)) {
      ++stats.files_kept;
      kept.push_back(std::move(fd));
    } else {
      ++stats.files_dropped;
      stats.dropped_paths.push_back(path);
    }
  }
  patch.files = std::move(kept);
  return stats;
}

bool has_cpp_changes(const Patch& patch) {
  return std::any_of(patch.files.begin(), patch.files.end(), [](const FileDiff& fd) {
    const std::string& path = fd.new_path.empty() ? fd.old_path : fd.new_path;
    return is_cpp_path(path) && !fd.hunks.empty();
  });
}

}  // namespace patchdb::diff
