// Fuzzy patch application, GNU-patch style. Real `.patch` files often
// target a slightly different version of the file than the one at hand:
// line numbers drift, or the outermost context lines changed. The fuzzy
// applier relocates each hunk within +/- max_offset lines of its stated
// position and, failing that, retries with up to `max_fuzz` context
// lines ignored at each hunk edge — the tolerance the collection
// pipeline needs when a crawled patch does not match the checkout.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "diff/patch.h"

namespace patchdb::diff {

struct FuzzOptions {
  std::size_t max_offset = 50;  // search radius around the stated position
  std::size_t max_fuzz = 2;     // context lines ignorable per hunk edge
};

struct FuzzReport {
  std::size_t hunks_applied = 0;
  std::size_t hunks_offset = 0;   // applied away from the stated position
  std::size_t hunks_fuzzed = 0;   // applied with reduced context
  std::size_t hunks_failed = 0;   // skipped entirely
  std::vector<std::string> notes;

  bool clean() const noexcept {
    return hunks_offset == 0 && hunks_fuzzed == 0 && hunks_failed == 0;
  }
};

/// Apply as much of `fd` as possible to `lines`; returns the patched
/// content plus a report. Unlike apply_file_diff this never throws on
/// mismatch — failed hunks are recorded and skipped.
std::vector<std::string> apply_with_fuzz(const std::vector<std::string>& lines,
                                         const FileDiff& fd, FuzzReport& report,
                                         const FuzzOptions& options = {});

}  // namespace patchdb::diff
