#include "diff/patch.h"

#include "util/strings.h"

namespace patchdb::diff {

std::size_t Hunk::added_count() const noexcept {
  std::size_t n = 0;
  for (const Line& l : lines) n += (l.kind == LineKind::kAdded);
  return n;
}

std::size_t Hunk::removed_count() const noexcept {
  std::size_t n = 0;
  for (const Line& l : lines) n += (l.kind == LineKind::kRemoved);
  return n;
}

std::size_t Hunk::context_count() const noexcept {
  std::size_t n = 0;
  for (const Line& l : lines) n += (l.kind == LineKind::kContext);
  return n;
}

namespace {
std::string join_kind(const std::vector<Line>& lines, LineKind kind) {
  std::string out;
  bool first = true;
  for (const Line& l : lines) {
    if (l.kind != kind) continue;
    if (!first) out += '\n';
    out += l.text;
    first = false;
  }
  return out;
}
}  // namespace

std::string Hunk::removed_text() const { return join_kind(lines, LineKind::kRemoved); }
std::string Hunk::added_text() const { return join_kind(lines, LineKind::kAdded); }

std::size_t Patch::hunk_count() const noexcept {
  std::size_t n = 0;
  for (const FileDiff& f : files) n += f.hunks.size();
  return n;
}

std::size_t Patch::added_lines() const noexcept {
  std::size_t n = 0;
  for (const FileDiff& f : files)
    for (const Hunk& h : f.hunks) n += h.added_count();
  return n;
}

std::size_t Patch::removed_lines() const noexcept {
  std::size_t n = 0;
  for (const FileDiff& f : files)
    for (const Hunk& h : f.hunks) n += h.removed_count();
  return n;
}

bool is_cpp_path(std::string_view path) {
  const std::string ext = util::extension(path);
  return ext == ".c" || ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
         ext == ".h" || ext == ".hpp" || ext == ".hh" || ext == ".hxx";
}

}  // namespace patchdb::diff
