#include "diff/parse.h"

#include <cstddef>

#include "util/strings.h"

namespace patchdb::diff {

namespace {

using util::split_lines;
using util::starts_with;
using util::trim;

struct Cursor {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;

  bool done() const noexcept { return pos >= lines.size(); }
  std::string_view peek() const { return lines[pos]; }
  std::string_view next() { return lines[pos++]; }
  std::size_t human_line() const noexcept { return pos + 1; }
};

/// Strip "a/" or "b/" git path prefixes; "/dev/null" maps to empty.
std::string clean_path(std::string_view raw) {
  raw = trim(raw);
  if (raw == "/dev/null") return "";
  if (starts_with(raw, "a/") || starts_with(raw, "b/")) raw.remove_prefix(2);
  return std::string(raw);
}

/// Parse "@@ -a[,b] +c[,d] @@ section".
bool parse_hunk_header(std::string_view line, Hunk& hunk) {
  if (!starts_with(line, "@@ -")) return false;
  const std::size_t close = line.find(" @@", 3);
  if (close == std::string_view::npos) return false;
  std::string_view ranges = line.substr(4, close - 4);  // "a,b +c,d"
  const std::size_t plus = ranges.find(" +");
  if (plus == std::string_view::npos) return false;

  auto parse_range = [](std::string_view text, std::size_t& start,
                        std::size_t& count) {
    const std::size_t comma = text.find(',');
    if (comma == std::string_view::npos) {
      count = 1;
      return util::parse_size(text, start);
    }
    return util::parse_size(text.substr(0, comma), start) &&
           util::parse_size(text.substr(comma + 1), count);
  };

  if (!parse_range(ranges.substr(0, plus), hunk.old_start, hunk.old_count)) {
    return false;
  }
  if (!parse_range(ranges.substr(plus + 2), hunk.new_start, hunk.new_count)) {
    return false;
  }
  std::string_view section = line.substr(close + 3);
  hunk.section = std::string(trim(section));
  return true;
}

/// Parse the body of one hunk; `header` has already been consumed into `hunk`.
void parse_hunk_body(Cursor& cur, Hunk& hunk) {
  std::size_t old_seen = 0;
  std::size_t new_seen = 0;
  while (!cur.done() && (old_seen < hunk.old_count || new_seen < hunk.new_count)) {
    std::string_view line = cur.peek();
    if (starts_with(line, "\\ No newline")) {  // marker, not content
      cur.next();
      continue;
    }
    Line entry;
    if (line.empty()) {
      // Some tools emit empty context lines with the leading space dropped.
      entry.kind = LineKind::kContext;
      entry.text = "";
      ++old_seen;
      ++new_seen;
    } else if (line[0] == ' ') {
      entry.kind = LineKind::kContext;
      entry.text = std::string(line.substr(1));
      ++old_seen;
      ++new_seen;
    } else if (line[0] == '-') {
      entry.kind = LineKind::kRemoved;
      entry.text = std::string(line.substr(1));
      ++old_seen;
    } else if (line[0] == '+') {
      entry.kind = LineKind::kAdded;
      entry.text = std::string(line.substr(1));
      ++new_seen;
    } else {
      throw ParseError("unexpected line inside hunk", cur.human_line());
    }
    hunk.lines.push_back(std::move(entry));
    cur.next();
  }
  if (old_seen != hunk.old_count || new_seen != hunk.new_count) {
    throw ParseError("hunk shorter than its header claims", cur.human_line());
  }
  // Swallow a trailing no-newline marker that applies to the last line.
  if (!cur.done() && starts_with(cur.peek(), "\\ No newline")) cur.next();
}

/// Parse one `diff --git` section. The "diff --git" line is at cur.peek().
FileDiff parse_one_file(Cursor& cur) {
  FileDiff fd;
  std::string_view header = cur.next();
  // "diff --git a/path b/path" — paths may contain spaces; git quotes them,
  // but the common case splits on " b/".
  std::string_view rest = header.substr(std::string_view("diff --git ").size());
  const std::size_t split_at = rest.rfind(" b/");
  if (split_at == std::string_view::npos) {
    throw ParseError("cannot split diff --git paths", cur.human_line() - 1);
  }
  fd.old_path = clean_path(rest.substr(0, split_at));
  fd.new_path = clean_path(rest.substr(split_at + 1));

  // Extended header lines until we hit ---, another diff, or a hunk.
  while (!cur.done()) {
    std::string_view line = cur.peek();
    if (starts_with(line, "diff --git") || starts_with(line, "@@ -")) break;
    if (starts_with(line, "--- ")) break;
    if (starts_with(line, "index ")) {
      fd.index_line = std::string(trim(line.substr(6)));
    } else if (starts_with(line, "new file")) {
      fd.change = ChangeKind::kCreate;
    } else if (starts_with(line, "deleted file")) {
      fd.change = ChangeKind::kDelete;
    } else if (starts_with(line, "rename from") || starts_with(line, "rename to")) {
      fd.change = ChangeKind::kRename;
    } else if (starts_with(line, "Binary files")) {
      cur.next();
      return fd;  // binary: no hunks to parse
    }
    // old mode / new mode / similarity index / copy from ... — skip.
    cur.next();
  }

  // --- / +++ lines (absent for pure renames and mode changes).
  if (!cur.done() && starts_with(cur.peek(), "--- ")) {
    std::string old_name = clean_path(cur.next().substr(4));
    if (old_name.empty()) fd.change = ChangeKind::kCreate;
    if (cur.done() || !starts_with(cur.peek(), "+++ ")) {
      throw ParseError("--- without matching +++", cur.human_line());
    }
    std::string new_name = clean_path(cur.next().substr(4));
    if (new_name.empty()) fd.change = ChangeKind::kDelete;
  }

  while (!cur.done() && starts_with(cur.peek(), "@@ -")) {
    Hunk hunk;
    if (!parse_hunk_header(cur.peek(), hunk)) {
      throw ParseError("malformed hunk header", cur.human_line());
    }
    cur.next();
    parse_hunk_body(cur, hunk);
    fd.hunks.push_back(std::move(hunk));
  }
  return fd;
}

/// Parse commit metadata lines until the first "diff --git".
void parse_commit_header(Cursor& cur, Patch& patch) {
  bool in_message = false;
  std::string message;
  while (!cur.done() && !starts_with(cur.peek(), "diff --git")) {
    std::string_view line = cur.next();
    if (!in_message) {
      if (starts_with(line, "commit ")) {
        patch.commit = std::string(trim(line.substr(7)));
        // `git log --decorate` can append " (HEAD -> main)" — drop it.
        const std::size_t sp = patch.commit.find(' ');
        if (sp != std::string::npos) patch.commit.resize(sp);
      } else if (starts_with(line, "From ")) {
        // format-patch style: "From <hash> Mon Sep 17 00:00:00 2001"
        const auto fields = util::split_ws(line);
        if (fields.size() >= 2) patch.commit = std::string(fields[1]);
      } else if (starts_with(line, "Author:") || starts_with(line, "From:")) {
        const std::size_t colon = line.find(':');
        patch.author = std::string(trim(line.substr(colon + 1)));
      } else if (starts_with(line, "Date:")) {
        patch.date = std::string(trim(line.substr(5)));
      } else if (starts_with(line, "Subject:")) {
        message = std::string(trim(line.substr(8)));
        in_message = true;
      } else if (line.empty()) {
        in_message = true;  // blank line separates header from message body
      }
    } else {
      // Git indents log messages with four spaces; format-patch does not.
      std::string_view body = starts_with(line, "    ") ? line.substr(4) : line;
      if (!message.empty()) message += '\n';
      message += body;
      // format-patch ends the message with a "---" separator before diffstat.
      if (trim(body) == "---") {
        message.resize(message.size() - 4);
        break;
      }
    }
  }
  patch.message = std::string(trim(message));
  // Skip diffstat lines between "---" and the first "diff --git".
  while (!cur.done() && !starts_with(cur.peek(), "diff --git")) cur.next();
}

}  // namespace

Patch parse_patch(std::string_view text) {
  Cursor cur{split_lines(text)};
  Patch patch;
  parse_commit_header(cur, patch);
  while (!cur.done() && starts_with(cur.peek(), "diff --git")) {
    patch.files.push_back(parse_one_file(cur));
  }
  if (patch.files.empty() && patch.commit.empty()) {
    throw ParseError("input contains neither commit header nor diffs", 1);
  }
  return patch;
}

std::vector<Patch> parse_patch_stream(std::string_view text) {
  // Split on lines that start a new commit.
  std::vector<Patch> out;
  const auto lines = split_lines(text);
  std::size_t start_line = 0;
  bool have_start = false;
  std::size_t offset = 0;  // byte offset of current line
  std::size_t start_offset = 0;
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // [begin, end) bytes
  for (std::size_t i = 0; i <= lines.size(); ++i) {
    const bool is_commit_start =
        i < lines.size() && starts_with(lines[i], "commit ");
    if (is_commit_start || i == lines.size()) {
      if (have_start) spans.emplace_back(start_offset, offset);
      start_offset = offset;
      start_line = i;
      have_start = is_commit_start;
    }
    if (i < lines.size()) {
      // +1 for the newline; the final line may lack one but the value is
      // only used as an upper bound.
      offset += lines[i].size() + 1;
    }
  }
  (void)start_line;
  for (auto [begin, end] : spans) {
    const std::size_t len = std::min(end, text.size()) - begin;
    out.push_back(parse_patch(text.substr(begin, len)));
  }
  return out;
}

std::vector<FileDiff> parse_file_diffs(std::string_view text) {
  Cursor cur{split_lines(text)};
  std::vector<FileDiff> out;
  while (!cur.done() && !starts_with(cur.peek(), "diff --git")) cur.next();
  while (!cur.done() && starts_with(cur.peek(), "diff --git")) {
    out.push_back(parse_one_file(cur));
  }
  return out;
}

}  // namespace patchdb::diff
