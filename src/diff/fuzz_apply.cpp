#include "diff/fuzz_apply.h"

#include <algorithm>

namespace patchdb::diff {

namespace {

/// The old-side pattern of a hunk with `fuzz` context lines dropped from
/// each edge: what must match the file for the hunk to apply.
struct HunkPattern {
  std::vector<const std::string*> old_lines;  // context + removed, in order
  std::size_t leading_dropped = 0;            // context lines cut at the top
};

HunkPattern old_pattern(const Hunk& hunk, std::size_t fuzz) {
  HunkPattern p;
  // Identify leading/trailing context runs.
  std::size_t lead = 0;
  while (lead < hunk.lines.size() && hunk.lines[lead].kind == LineKind::kContext) {
    ++lead;
  }
  std::size_t trail = 0;
  while (trail < hunk.lines.size() &&
         hunk.lines[hunk.lines.size() - 1 - trail].kind == LineKind::kContext) {
    ++trail;
  }
  const std::size_t drop_lead = std::min(fuzz, lead);
  const std::size_t drop_trail = std::min(fuzz, trail);
  p.leading_dropped = drop_lead;

  for (std::size_t i = drop_lead; i < hunk.lines.size() - drop_trail; ++i) {
    if (hunk.lines[i].kind != LineKind::kAdded) {
      p.old_lines.push_back(&hunk.lines[i].text);
    }
  }
  return p;
}

bool matches_at(const std::vector<std::string>& lines, std::size_t start,
                const HunkPattern& pattern) {
  if (start + pattern.old_lines.size() > lines.size()) return false;
  for (std::size_t i = 0; i < pattern.old_lines.size(); ++i) {
    if (lines[start + i] != *pattern.old_lines[i]) return false;
  }
  return true;
}

/// Search the stated position first, then alternate +/-1, +/-2, ...
std::optional<std::size_t> locate(const std::vector<std::string>& lines,
                                  std::size_t stated, const HunkPattern& pattern,
                                  std::size_t max_offset) {
  if (matches_at(lines, stated, pattern)) return stated;
  for (std::size_t delta = 1; delta <= max_offset; ++delta) {
    if (stated + delta <= lines.size() &&
        matches_at(lines, stated + delta, pattern)) {
      return stated + delta;
    }
    if (stated >= delta && matches_at(lines, stated - delta, pattern)) {
      return stated - delta;
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::string> apply_with_fuzz(const std::vector<std::string>& lines,
                                         const FileDiff& fd, FuzzReport& report,
                                         const FuzzOptions& options) {
  std::vector<std::string> current = lines;
  // Track the cumulative line drift introduced by earlier hunks so later
  // stated positions stay meaningful.
  std::ptrdiff_t drift = 0;

  for (std::size_t h = 0; h < fd.hunks.size(); ++h) {
    const Hunk& hunk = fd.hunks[h];
    const std::ptrdiff_t stated_raw =
        static_cast<std::ptrdiff_t>(hunk.old_count == 0 ? hunk.old_start
                                                        : hunk.old_start - 1) +
        drift;
    const std::size_t stated = static_cast<std::size_t>(std::max<std::ptrdiff_t>(
        0, std::min<std::ptrdiff_t>(stated_raw,
                                    static_cast<std::ptrdiff_t>(current.size()))));

    bool placed = false;
    for (std::size_t fuzz = 0; fuzz <= options.max_fuzz && !placed; ++fuzz) {
      const HunkPattern pattern = old_pattern(hunk, fuzz);
      const std::optional<std::size_t> at =
          locate(current, stated + (fuzz == 0 ? 0 : pattern.leading_dropped),
                 pattern, options.max_offset);
      if (!at.has_value()) continue;

      // Rebuild the region: replace the matched old lines with the
      // hunk's new-side lines (minus the dropped edges' context, which
      // stays as-is in the file).
      std::vector<std::string> replacement;
      std::size_t lead_seen = 0;
      std::size_t trail_context = 0;
      // Count trailing context to know what was dropped at the bottom.
      {
        std::size_t trail = 0;
        while (trail < hunk.lines.size() &&
               hunk.lines[hunk.lines.size() - 1 - trail].kind == LineKind::kContext) {
          ++trail;
        }
        trail_context = std::min(fuzz, trail);
      }
      for (std::size_t i = 0; i < hunk.lines.size() - trail_context; ++i) {
        const Line& line = hunk.lines[i];
        if (lead_seen < pattern.leading_dropped) {
          // dropped leading context: not part of the replacement
          if (line.kind == LineKind::kContext) {
            ++lead_seen;
            continue;
          }
        }
        if (line.kind != LineKind::kRemoved) replacement.push_back(line.text);
      }

      const auto begin = current.begin() + static_cast<std::ptrdiff_t>(*at);
      const auto end = begin + static_cast<std::ptrdiff_t>(pattern.old_lines.size());
      const std::ptrdiff_t before = static_cast<std::ptrdiff_t>(current.size());
      current.erase(begin, end);
      current.insert(current.begin() + static_cast<std::ptrdiff_t>(*at),
                     replacement.begin(), replacement.end());
      drift += static_cast<std::ptrdiff_t>(current.size()) - before;

      ++report.hunks_applied;
      if (*at != stated) {
        ++report.hunks_offset;
        report.notes.push_back("hunk " + std::to_string(h + 1) + " applied at " +
                               std::to_string(*at + 1) + " (stated " +
                               std::to_string(stated + 1) + ")");
      }
      if (fuzz > 0) {
        ++report.hunks_fuzzed;
        report.notes.push_back("hunk " + std::to_string(h + 1) + " needed fuzz " +
                               std::to_string(fuzz));
      }
      placed = true;
    }
    if (!placed) {
      ++report.hunks_failed;
      report.notes.push_back("hunk " + std::to_string(h + 1) + " FAILED");
    }
  }
  return current;
}

}  // namespace patchdb::diff
