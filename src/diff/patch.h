// Unified-diff data model. A Patch mirrors one `git show --format=...`
// commit: metadata plus one FileDiff per modified file, each FileDiff a
// sequence of Hunks, each Hunk a run of context/removed/added Lines.
// This is the shape the paper works with: "a commit can be regarded as a
// patch", hunks are "consecutive removed and added statements", and the
// NVD pipeline strips non-C/C++ FileDiffs before feature extraction.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::diff {

enum class LineKind { kContext, kRemoved, kAdded };

struct Line {
  LineKind kind = LineKind::kContext;
  std::string text;  // without the +/-/space marker and without newline

  friend bool operator==(const Line&, const Line&) = default;
};

/// One `@@ -a,b +c,d @@ section` block.
struct Hunk {
  std::size_t old_start = 0;  // 1-based line number in the old file
  std::size_t old_count = 0;
  std::size_t new_start = 0;  // 1-based line number in the new file
  std::size_t new_count = 0;
  std::string section;  // the function signature git prints after `@@`
  std::vector<Line> lines;

  std::size_t added_count() const noexcept;
  std::size_t removed_count() const noexcept;
  std::size_t context_count() const noexcept;

  /// All removed (respectively added) line texts joined with '\n'.
  std::string removed_text() const;
  std::string added_text() const;

  friend bool operator==(const Hunk&, const Hunk&) = default;
};

enum class ChangeKind { kModify, kCreate, kDelete, kRename };

/// Changes to a single file (`diff --git a/... b/...`).
struct FileDiff {
  std::string old_path;  // without the a/ prefix
  std::string new_path;  // without the b/ prefix
  ChangeKind change = ChangeKind::kModify;
  std::string index_line;  // "old_blob..new_blob mode", informational
  std::vector<Hunk> hunks;

  friend bool operator==(const FileDiff&, const FileDiff&) = default;
};

/// A whole commit.
struct Patch {
  std::string commit;   // 40-hex id
  std::string author;
  std::string date;
  std::string message;  // full commit message (subject + body)
  std::vector<FileDiff> files;

  std::size_t hunk_count() const noexcept;
  std::size_t added_lines() const noexcept;
  std::size_t removed_lines() const noexcept;

  friend bool operator==(const Patch&, const Patch&) = default;
};

/// True when the path has a C/C++ source or header extension
/// (.c, .cc, .cpp, .cxx, .h, .hpp, .hh, .hxx).
bool is_cpp_path(std::string_view path);

}  // namespace patchdb::diff
