#include "diff/render.h"

#include "util/strings.h"

namespace patchdb::diff {

namespace {

void render_hunk(const Hunk& hunk, std::string& out) {
  out += "@@ -";
  out += std::to_string(hunk.old_start);
  out += ',';
  out += std::to_string(hunk.old_count);
  out += " +";
  out += std::to_string(hunk.new_start);
  out += ',';
  out += std::to_string(hunk.new_count);
  out += " @@";
  if (!hunk.section.empty()) {
    out += ' ';
    out += hunk.section;
  }
  out += '\n';
  for (const Line& line : hunk.lines) {
    switch (line.kind) {
      case LineKind::kContext: out += ' '; break;
      case LineKind::kRemoved: out += '-'; break;
      case LineKind::kAdded: out += '+'; break;
    }
    out += line.text;
    out += '\n';
  }
}

void render_file(const FileDiff& fd, std::string& out) {
  const std::string& a = fd.old_path.empty() ? fd.new_path : fd.old_path;
  const std::string& b = fd.new_path.empty() ? fd.old_path : fd.new_path;
  out += "diff --git a/" + a + " b/" + b + '\n';
  switch (fd.change) {
    case ChangeKind::kCreate: out += "new file mode 100644\n"; break;
    case ChangeKind::kDelete: out += "deleted file mode 100644\n"; break;
    case ChangeKind::kRename:
      out += "rename from " + fd.old_path + '\n';
      out += "rename to " + fd.new_path + '\n';
      break;
    case ChangeKind::kModify: break;
  }
  if (!fd.index_line.empty()) out += "index " + fd.index_line + '\n';
  if (!fd.hunks.empty()) {
    out += "--- " +
           (fd.change == ChangeKind::kCreate ? "/dev/null" : "a/" + a) + '\n';
    out += "+++ " +
           (fd.change == ChangeKind::kDelete ? "/dev/null" : "b/" + b) + '\n';
    for (const Hunk& hunk : fd.hunks) render_hunk(hunk, out);
  }
}

}  // namespace

std::string render_file_diffs(const std::vector<FileDiff>& files) {
  std::string out;
  for (const FileDiff& fd : files) render_file(fd, out);
  return out;
}

std::string render_patch(const Patch& patch) {
  std::string out;
  out += "commit " + patch.commit + '\n';
  if (!patch.author.empty()) out += "Author: " + patch.author + '\n';
  if (!patch.date.empty()) out += "Date:   " + patch.date + '\n';
  out += '\n';
  if (!patch.message.empty()) {
    for (std::string_view line : util::split_lines(patch.message)) {
      out += "    ";
      out += line;
      out += '\n';
    }
    out += '\n';
  }
  out += render_file_diffs(patch.files);
  return out;
}

}  // namespace patchdb::diff
