// Render a Patch back into git unified-diff text. `parse_patch` and
// `render_patch` round-trip: parse(render(p)) == p for every patch the
// model can represent, which the property tests assert.
#pragma once

#include <string>

#include "diff/patch.h"

namespace patchdb::diff {

/// Render only the diff body (`diff --git` sections).
std::string render_file_diffs(const std::vector<FileDiff>& files);

/// Render the full commit: header (commit/author/date/message) + body.
std::string render_patch(const Patch& patch);

}  // namespace patchdb::diff
