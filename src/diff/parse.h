// Parser for git-format unified diffs (the `.patch` files the NVD
// crawler downloads from GitHub). Tolerant of the dirt real patches
// carry — "\ No newline at end of file" markers, mode-change lines,
// binary-file notices — and strict about structure where it matters
// (hunk headers must parse; line counts must match the header).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "diff/patch.h"

namespace patchdb::diff {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string_view what, std::size_t line)
      : std::runtime_error(std::string(what) + " (input line " +
                           std::to_string(line) + ")"),
        line_(line) {}

  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parse one commit in `git format-patch` / GitHub `.patch` form.
/// Throws ParseError on malformed input.
Patch parse_patch(std::string_view text);

/// Parse a stream of commits separated by "commit <hash>" headers
/// (`git log -p` output form).
std::vector<Patch> parse_patch_stream(std::string_view text);

/// Parse only the diff body (no commit header): a sequence of
/// `diff --git` sections.
std::vector<FileDiff> parse_file_diffs(std::string_view text);

}  // namespace patchdb::diff
