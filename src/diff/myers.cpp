#include "diff/myers.h"

#include <algorithm>

namespace patchdb::diff {

namespace {

enum class EditKind { kKeep, kRemove, kAdd };

struct Edit {
  EditKind kind;
  std::size_t index;  // index into old (kKeep/kRemove) or new (kAdd)
};

/// Myers greedy O((N+M)D) edit script.
std::vector<Edit> edit_script(const std::vector<std::string>& a,
                              const std::vector<std::string>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  const std::size_t max_d = n + m;
  if (max_d == 0) return {};

  // v[k + offset] = furthest x on diagonal k after d steps.
  const std::size_t offset = max_d;
  std::vector<std::size_t> v(2 * max_d + 1, 0);
  std::vector<std::vector<std::size_t>> trace;

  std::size_t final_d = 0;
  bool found = false;
  for (std::size_t d = 0; d <= max_d && !found; ++d) {
    trace.push_back(v);
    for (std::int64_t k = -static_cast<std::int64_t>(d);
         k <= static_cast<std::int64_t>(d); k += 2) {
      const std::size_t ki = static_cast<std::size_t>(k + static_cast<std::int64_t>(offset));
      std::size_t x;
      if (k == -static_cast<std::int64_t>(d) ||
          (k != static_cast<std::int64_t>(d) && v[ki - 1] < v[ki + 1])) {
        x = v[ki + 1];  // move down (insert from b)
      } else {
        x = v[ki - 1] + 1;  // move right (delete from a)
      }
      std::size_t y = static_cast<std::size_t>(static_cast<std::int64_t>(x) - k);
      while (x < n && y < m && a[x] == b[y]) {
        ++x;
        ++y;
      }
      v[ki] = x;
      if (x >= n && y >= m) {
        final_d = d;
        found = true;
        break;
      }
    }
  }

  // Backtrack through the trace to recover the script.
  std::vector<Edit> script;
  std::int64_t x = static_cast<std::int64_t>(n);
  std::int64_t y = static_cast<std::int64_t>(m);
  for (std::size_t d = final_d; d > 0; --d) {
    const auto& prev = trace[d];
    const std::int64_t k = x - y;
    const std::size_t ki = static_cast<std::size_t>(k + static_cast<std::int64_t>(offset));
    std::int64_t prev_k;
    if (k == -static_cast<std::int64_t>(d) ||
        (k != static_cast<std::int64_t>(d) && prev[ki - 1] < prev[ki + 1])) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    const std::size_t prev_ki =
        static_cast<std::size_t>(prev_k + static_cast<std::int64_t>(offset));
    const std::int64_t prev_x = static_cast<std::int64_t>(prev[prev_ki]);
    const std::int64_t prev_y = prev_x - prev_k;

    // Snake (diagonal keeps) back to the branch point.
    while (x > prev_x && y > prev_y) {
      script.push_back(Edit{EditKind::kKeep, static_cast<std::size_t>(x - 1)});
      --x;
      --y;
    }
    if (x == prev_x) {
      script.push_back(Edit{EditKind::kAdd, static_cast<std::size_t>(y - 1)});
      --y;
    } else {
      script.push_back(Edit{EditKind::kRemove, static_cast<std::size_t>(x - 1)});
      --x;
    }
  }
  while (x > 0 && y > 0) {
    script.push_back(Edit{EditKind::kKeep, static_cast<std::size_t>(x - 1)});
    --x;
    --y;
  }
  while (x > 0) {
    script.push_back(Edit{EditKind::kRemove, static_cast<std::size_t>(x - 1)});
    --x;
  }
  while (y > 0) {
    script.push_back(Edit{EditKind::kAdd, static_cast<std::size_t>(y - 1)});
    --y;
  }
  std::reverse(script.begin(), script.end());
  return script;
}

}  // namespace

std::vector<Hunk> diff_lines(const std::vector<std::string>& old_lines,
                             const std::vector<std::string>& new_lines,
                             const DiffOptions& options) {
  const std::vector<Edit> script = edit_script(old_lines, new_lines);

  // Group the script into hunks: runs of changes separated by more than
  // 2*context keep-lines. Walk the script tracking both line counters.
  std::vector<Hunk> hunks;
  std::size_t i = 0;
  std::size_t old_line = 0;  // 0-based, lines consumed from old
  std::size_t new_line = 0;

  while (i < script.size()) {
    // Skip keeps to the next change.
    while (i < script.size() && script[i].kind == EditKind::kKeep) {
      ++old_line;
      ++new_line;
      ++i;
    }
    if (i >= script.size()) break;

    // Begin a hunk `context` lines before the change.
    Hunk hunk;
    const std::size_t lead = std::min(options.context, old_line);
    std::size_t h_old = old_line - lead;
    std::size_t h_new = new_line - lead;
    hunk.old_start = h_old + 1;
    hunk.new_start = h_new + 1;
    for (std::size_t c = 0; c < lead; ++c) {
      hunk.lines.push_back(Line{LineKind::kContext, old_lines[h_old + c]});
    }

    std::size_t trailing_keeps = 0;
    while (i < script.size()) {
      const Edit& e = script[i];
      if (e.kind == EditKind::kKeep) {
        // Look ahead: if the run of keeps reaches the end or exceeds
        // 2*context, close the hunk with `context` of them.
        std::size_t run = 0;
        while (i + run < script.size() && script[i + run].kind == EditKind::kKeep) {
          ++run;
        }
        const bool at_end = (i + run >= script.size());
        if (at_end || run > 2 * options.context) {
          const std::size_t keep = std::min(options.context, run);
          for (std::size_t c = 0; c < keep; ++c) {
            hunk.lines.push_back(Line{LineKind::kContext, old_lines[old_line]});
            ++old_line;
            ++new_line;
            ++i;
          }
          trailing_keeps = keep;
          break;
        }
        // Short gap: absorb all keeps into the hunk and continue.
        for (std::size_t c = 0; c < run; ++c) {
          hunk.lines.push_back(Line{LineKind::kContext, old_lines[old_line]});
          ++old_line;
          ++new_line;
          ++i;
        }
      } else if (e.kind == EditKind::kRemove) {
        hunk.lines.push_back(Line{LineKind::kRemoved, old_lines[e.index]});
        ++old_line;
        ++i;
      } else {
        hunk.lines.push_back(Line{LineKind::kAdded, new_lines[e.index]});
        ++new_line;
        ++i;
      }
    }
    (void)trailing_keeps;

    hunk.old_count = 0;
    hunk.new_count = 0;
    for (const Line& l : hunk.lines) {
      if (l.kind != LineKind::kAdded) ++hunk.old_count;
      if (l.kind != LineKind::kRemoved) ++hunk.new_count;
    }
    // git's convention: a hunk with zero old lines anchors at the previous
    // line number (old_start is "insert after").
    if (hunk.old_count == 0) hunk.old_start = h_old;
    if (hunk.new_count == 0) hunk.new_start = h_new;
    hunks.push_back(std::move(hunk));
  }
  return hunks;
}

FileDiff diff_file(const std::string& path, const std::vector<std::string>& old_lines,
                   const std::vector<std::string>& new_lines,
                   const DiffOptions& options) {
  FileDiff fd;
  fd.old_path = path;
  fd.new_path = path;
  if (old_lines.empty() && !new_lines.empty()) fd.change = ChangeKind::kCreate;
  if (!old_lines.empty() && new_lines.empty()) fd.change = ChangeKind::kDelete;
  fd.hunks = diff_lines(old_lines, new_lines, options);
  return fd;
}

}  // namespace patchdb::diff
