// The non-C/C++ stripping step of the NVD pipeline (Section III-A):
// real security patches drag along .changelog/.kconfig/.sh/.phpt edits
// that "do not play an important role in fixing vulnerabilities". The
// filter removes those FileDiffs and reports what it dropped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "diff/patch.h"

namespace patchdb::diff {

struct FilterStats {
  std::size_t files_kept = 0;
  std::size_t files_dropped = 0;
  std::vector<std::string> dropped_paths;
};

/// Remove every FileDiff whose path is not a C/C++ source or header.
/// Returns what was dropped; the patch is edited in place.
FilterStats keep_cpp_only(Patch& patch);

/// True when a patch still contains at least one C/C++ hunk (patches that
/// end up empty after filtering are discarded by the collector).
bool has_cpp_changes(const Patch& patch);

}  // namespace patchdb::diff
