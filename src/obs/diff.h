// Perf-regression comparator for RunReport artifacts. Given a baseline
// report (checked into bench/) and a candidate (the run just produced),
// evaluate per-metric threshold rules and report which ones regressed.
// The `tools/bench_diff` CLI is a thin wrapper; the rule engine lives
// here so it is unit-testable without spawning processes.
//
// Metric names resolve in order: the literal "wall_ms", then counters,
// then gauges, then histogram statistics addressed with an `@` suffix —
// "link.tile_ms@p95", "@p50", "@mean", "@max", "@count".
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/report.h"

namespace patchdb::obs {

struct DiffRule {
  enum class Kind {
    kMaxIncrease,  // candidate may exceed baseline by at most threshold_pct
    kMaxDecrease,  // candidate may fall below baseline by at most threshold_pct
    kRequire,      // metric must exist in the candidate (and match
                   // required_value when one is given)
    kMin,          // metric must exist in the candidate and be >=
                   // required_value (absolute floor; the baseline is
                   // not consulted, so the rule is machine-independent)
  };

  Kind kind = Kind::kMaxIncrease;
  std::string metric;
  double threshold_pct = 0.0;
  double required_value = 0.0;
  bool has_required_value = false;
};

struct DiffResult {
  DiffRule rule;
  std::optional<double> baseline;
  std::optional<double> candidate;
  bool ok = false;
  /// One human line: "OK wall_ms 812.4 -> 790.1 (-2.7%, limit +50%)".
  std::string message;
};

/// Resolve `name` against `report` (see header comment for the order).
/// Returns nullopt when the metric does not exist in this report.
std::optional<double> lookup_metric(const RunReport& report,
                                    std::string_view name);

/// Evaluate every rule. A rule whose metric is missing from either side
/// fails (missing baseline metrics are a stale-baseline bug worth
/// failing loudly on, not skipping).
std::vector<DiffResult> diff_reports(const RunReport& baseline,
                                     const RunReport& candidate,
                                     const std::vector<DiffRule>& rules);

/// Parse one CLI rule spec:
///   "metric:PCT"          (for --max-increase / --max-decrease)
///   "metric" / "metric=V" (for --require)
/// Returns false and sets `error` on a malformed spec.
bool parse_threshold_spec(std::string_view spec, DiffRule::Kind kind,
                          DiffRule& out, std::string& error);
bool parse_require_spec(std::string_view spec, DiffRule& out,
                        std::string& error);
/// Parse "metric:VALUE" for --min (absolute candidate floor).
bool parse_min_spec(std::string_view spec, DiffRule& out, std::string& error);

}  // namespace patchdb::obs
