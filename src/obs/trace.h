// Scoped-span tracer. Instrumented code opens RAII spans —
//
//   PATCHDB_TRACE_SPAN("nearest_link.round");
//
// — which record wall and thread-CPU time into a per-thread ring buffer
// when a Tracer is installed, and cost one relaxed atomic load when none
// is. Spans nest: each completed record carries its parent's id and its
// depth, so a RunReport can rebuild the call tree. Rings are fixed-size
// (kSpanRingCapacity by default, overridable per run via the
// PATCHDB_SPAN_RING environment variable); when a thread overflows its
// ring the oldest spans are dropped and counted — both on the tracer
// (dropped()) and live on the installed registry as the
// `obs.spans_dropped` counter — never reallocated: tracing the
// augmentation loop must not perturb it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::obs {

inline constexpr std::size_t kSpanRingCapacity = 4096;

/// Parse a PATCHDB_SPAN_RING override. nullptr / "" fall back to
/// kSpanRingCapacity; anything that is not a positive integer (with
/// nothing trailing) throws std::runtime_error with the offending text.
std::size_t parse_span_ring_capacity(const char* text);

/// One completed span. Times are microseconds; start is relative to the
/// owning Tracer's epoch so runs serialize small, diffable numbers.
struct SpanRecord {
  std::string name;
  std::uint32_t thread_index = 0;  // per-tracer dense thread id
  std::uint64_t span_id = 0;       // unique per tracer, != 0
  std::uint64_t parent_id = 0;     // 0 = root span of its thread
  std::uint32_t depth = 0;
  std::int64_t start_us = 0;
  std::int64_t wall_us = 0;
  std::int64_t cpu_us = 0;  // thread CPU time (0 where unsupported)
};

class Tracer {
 public:
  /// Opaque per-thread span ring; public only so the thread-local cache
  /// in trace.cpp can hold a reference.
  struct ThreadRing;

  /// Reads PATCHDB_SPAN_RING at construction (not cached statically, so
  /// env changes between sessions take effect); throws
  /// std::runtime_error on a malformed override.
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// All completed spans across threads, ordered by (thread, start).
  /// Concurrent span completion during a snapshot is safe; the snapshot
  /// sees a consistent prefix of each ring.
  std::vector<SpanRecord> snapshot() const;

  /// Spans dropped to ring overflow, across all threads.
  std::uint64_t dropped() const noexcept;

  /// Per-thread ring capacity this tracer was constructed with.
  std::size_t span_ring_capacity() const noexcept { return ring_capacity_; }

  std::chrono::steady_clock::time_point epoch() const noexcept { return epoch_; }

 private:
  friend class ScopedSpan;

  /// The calling thread's ring within this tracer (registered on first
  /// use; the shared_ptr in rings_ keeps data alive past thread exit).
  std::shared_ptr<ThreadRing> local_ring();
  std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::chrono::steady_clock::time_point epoch_;
  std::size_t ring_capacity_ = kSpanRingCapacity;
  std::atomic<std::uint64_t> next_id_{0};
  mutable std::mutex rings_mutex_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::uint64_t generation_ = 0;  // distinguishes re-installed tracers
};

/// Install/read the process-global tracer (same nesting contract as
/// install_registry). Spans opened while no tracer is installed are
/// no-ops even if a tracer appears before they close.
Tracer* install_tracer(Tracer* tracer) noexcept;
Tracer* tracer() noexcept;

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;  // false = no tracer installed; destructor no-ops
  std::uint64_t generation_ = 0;  // tracer generation captured at open
  std::string_view name_;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::chrono::steady_clock::time_point wall_start_;
  std::int64_t cpu_start_us_ = 0;
};

}  // namespace patchdb::obs

#if defined(PATCHDB_OBS_DISABLED)
#define PATCHDB_TRACE_SPAN(name) ((void)0)
#else
#define PATCHDB_TRACE_SPAN_CONCAT2(a, b) a##b
#define PATCHDB_TRACE_SPAN_CONCAT(a, b) PATCHDB_TRACE_SPAN_CONCAT2(a, b)
#define PATCHDB_TRACE_SPAN(name)                 \
  ::patchdb::obs::ScopedSpan PATCHDB_TRACE_SPAN_CONCAT( \
      patchdb_obs_span_, __COUNTER__)(name)
#endif
