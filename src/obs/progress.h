// Heartbeat progress reporting for long-running loops. A Progress
// object wraps one loop (augmentation rounds, streaming-link tiles,
// checkpointed build phases); tick() is cheap enough to call per
// iteration (one relaxed load on the disabled fast path) and prints a
// rate/ETA line to stderr at most once per configured interval:
//
//   [progress] link.tiles: 14/52 (26.9%)  3.1/s  eta 12s
//
// Reporting is off by default. The CLI and bench binaries enable it
// behind --progress [--progress-ms N] via set_progress_interval_ms();
// 0 disables globally, so instrumented loops cost nothing in normal
// runs and tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace patchdb::obs {

/// Global heartbeat interval in milliseconds. 0 (the default) disables
/// all Progress output.
void set_progress_interval_ms(std::uint64_t interval_ms);
std::uint64_t progress_interval_ms() noexcept;

class Progress {
 public:
  /// `label` names the loop in every line; `total` of 0 means the item
  /// count is unknown (lines then omit percentage and ETA).
  explicit Progress(std::string label, std::uint64_t total = 0);
  /// Prints the final line (if reporting is enabled and anything was
  /// ticked) unless finish() already did.
  ~Progress();
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  /// Advance by `n` items. Thread-safe; the periodic line is printed by
  /// whichever caller crosses the interval.
  void tick(std::uint64_t n = 1);

  /// Items ticked so far.
  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  /// Print the closing `label: done/total ... total Ns` line now (when
  /// enabled). Idempotent; the destructor calls it.
  void finish();

 private:
  void emit(bool final_line);

  std::string label_;
  std::uint64_t total_;
  std::uint64_t interval_ms_;
  std::int64_t start_us_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::int64_t> next_emit_us_;
  std::atomic<bool> finished_{false};
};

}  // namespace patchdb::obs
