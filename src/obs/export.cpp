#include "obs/export.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <stdexcept>

namespace patchdb::obs {

namespace {

// One synthetic pid for the whole report; the trace format requires the
// field but this process model has exactly one process.
constexpr std::uint64_t kPid = 1;

Json metadata_event(std::uint64_t tid, std::string_view kind,
                    std::string name) {
  Json args = Json::object();
  args.set("name", Json(std::move(name)));
  Json event = Json::object();
  event.set("ph", Json("M"));
  event.set("pid", Json(kPid));
  event.set("tid", Json(tid));
  event.set("name", Json(kind));
  event.set("args", std::move(args));
  return event;
}

Json span_event(const SpanRecord& span) {
  Json args = Json::object();
  args.set("cpu_us", Json(static_cast<double>(span.cpu_us)));
  args.set("span_id", Json(span.span_id));
  args.set("parent_id", Json(span.parent_id));
  args.set("depth", Json(static_cast<std::uint64_t>(span.depth)));
  Json event = Json::object();
  event.set("ph", Json("X"));
  event.set("pid", Json(kPid));
  event.set("tid", Json(static_cast<std::uint64_t>(span.thread_index)));
  event.set("name", Json(span.name));
  event.set("ts", Json(static_cast<double>(span.start_us)));
  event.set("dur", Json(static_cast<double>(span.wall_us)));
  event.set("args", std::move(args));
  return event;
}

Json counter_event(std::string_view track, std::int64_t ts,
                   std::string_view series, double value) {
  Json args = Json::object();
  args.set(std::string(series), Json(value));
  Json event = Json::object();
  event.set("ph", Json("C"));
  event.set("pid", Json(kPid));
  event.set("tid", Json(std::uint64_t{0}));
  event.set("name", Json(track));
  event.set("ts", Json(static_cast<double>(ts)));
  event.set("args", std::move(args));
  return event;
}

}  // namespace

Json trace_events_json(const RunReport& report) {
  Json events = Json::array();

  events.push_back(metadata_event(0, "process_name", "patchdb: " + report.name));

  // Name every thread track that actually recorded spans. Thread index
  // 0 is whichever thread touched the tracer first — in every pipeline
  // entry point that is the main thread opening the top-level span.
  std::set<std::uint32_t> threads;
  for (const SpanRecord& span : report.spans) threads.insert(span.thread_index);
  for (const std::uint32_t tid : threads) {
    events.push_back(metadata_event(
        tid, "thread_name",
        tid == 0 ? "main" : "worker " + std::to_string(tid)));
  }

  for (const SpanRecord& span : report.spans) events.push_back(span_event(span));

  // Counter tracks from the resource timeline. The process-CPU sample
  // is cumulative, so it is emitted as a utilization rate between
  // consecutive samples (1.0 = one saturated core) instead of an
  // ever-growing line.
  for (std::size_t i = 0; i < report.resource_timeline.size(); ++i) {
    const ResourceSample& s = report.resource_timeline[i];
    events.push_back(counter_event(
        "rss_mb", s.t_us, "rss",
        static_cast<double>(s.rss_bytes) / (1024.0 * 1024.0)));
    events.push_back(counter_event(
        "peak_rss_mb", s.t_us, "peak",
        static_cast<double>(s.peak_rss_bytes) / (1024.0 * 1024.0)));
    events.push_back(counter_event(
        "pool_backlog", s.t_us, "pending", static_cast<double>(s.pool_pending)));
    events.push_back(counter_event("spans_dropped", s.t_us, "dropped",
                                   static_cast<double>(s.spans_dropped)));
    if (i > 0) {
      const ResourceSample& prev = report.resource_timeline[i - 1];
      const std::int64_t dt = s.t_us - prev.t_us;
      if (dt > 0) {
        const double rate =
            static_cast<double>(s.cpu_us - prev.cpu_us) / static_cast<double>(dt);
        events.push_back(counter_event("cpu_cores", s.t_us, "busy",
                                       std::max(rate, 0.0)));
      }
    }
  }

  Json other = Json::object();
  other.set("report", Json(report.name));
  other.set("schema", Json(report.schema));
  other.set("wall_ms", Json(report.wall_ms));
  other.set("spans_dropped", Json(report.spans_dropped));

  Json out = Json::object();
  out.set("displayTimeUnit", Json("ms"));
  out.set("otherData", std::move(other));
  out.set("traceEvents", std::move(events));
  return out;
}

void write_trace_file(const RunReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs: cannot open " + path + " for writing");
  out << trace_events_json(report).dump(1) << '\n';
  if (!out) throw std::runtime_error("obs: failed writing " + path);
}

}  // namespace patchdb::obs
