// RunReport: one machine-readable snapshot of a pipeline run — the
// aggregated metrics registry, the completed trace spans, the optional
// resource timeline, and run metadata — serializable to JSON
// (round-trip tested) and renderable as human tables through
// util/table.h. Bench binaries write one per run via --metrics-out;
// those artifacts are the repo's perf trajectory.
//
// Schema: new reports are `patchdb.obs.v2` (v1 plus the optional
// `resource_timeline` block). v1 artifacts still parse, keep their
// schema string, and round-trip byte-identically — the perf-trajectory
// files checked in before the sampler existed stay valid.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace patchdb::obs {

inline constexpr std::string_view kReportSchemaV1 = "patchdb.obs.v1";
inline constexpr std::string_view kReportSchemaV2 = "patchdb.obs.v2";

struct RunReport {
  /// Run identity ("table2_augmentation", "patchdb metrics", ...).
  std::string name;
  /// Schema tag this report serializes under. from_json preserves the
  /// artifact's own tag so validation round-trips are exact.
  std::string schema{kReportSchemaV2};
  /// Wall time covered by the report, in milliseconds.
  double wall_ms = 0.0;
  /// Spans dropped to ring overflow (0 in healthy runs).
  std::uint64_t spans_dropped = 0;

  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  /// Periodic RSS/CPU/pool samples (v2; empty when no sampler ran).
  /// t_us shares the spans' timebase (the tracer epoch).
  std::vector<ResourceSample> resource_timeline;

  Json to_json() const;
  static RunReport from_json(const Json& json);

  /// Human rendering: counters/gauges, histogram quantiles, and a span
  /// tree summary, as util::Table grids.
  std::string render() const;
};

/// Serialize and write `report` to `path` (pretty-printed). Throws
/// std::runtime_error on I/O failure.
void write_report_file(const RunReport& report, const std::string& path);

/// Read + parse a report file; throws JsonError / std::runtime_error on
/// malformed content. Used by `patchdb metrics --validate` and the
/// bench-smoke CI check.
RunReport read_report_file(const std::string& path);

}  // namespace patchdb::obs
