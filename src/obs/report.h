// RunReport: one machine-readable snapshot of a pipeline run — the
// aggregated metrics registry, the completed trace spans, and run
// metadata — serializable to JSON (round-trip tested) and renderable as
// human tables through util/table.h. Bench binaries write one per run
// via --metrics-out; those artifacts are the repo's perf trajectory.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchdb::obs {

struct RunReport {
  /// Run identity ("table2_augmentation", "patchdb metrics", ...).
  std::string name;
  /// Wall time covered by the report, in milliseconds.
  double wall_ms = 0.0;
  /// Spans dropped to ring overflow (0 in healthy runs).
  std::uint64_t spans_dropped = 0;

  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;

  Json to_json() const;
  static RunReport from_json(const Json& json);

  /// Human rendering: counters/gauges, histogram quantiles, and a span
  /// tree summary, as util::Table grids.
  std::string render() const;
};

/// Serialize and write `report` to `path` (pretty-printed). Throws
/// std::runtime_error on I/O failure.
void write_report_file(const RunReport& report, const std::string& path);

/// Read + parse a report file; throws JsonError / std::runtime_error on
/// malformed content. Used by `patchdb metrics --validate` and the
/// bench-smoke CI check.
RunReport read_report_file(const std::string& path);

}  // namespace patchdb::obs
