#include "obs/progress.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace patchdb::obs {

namespace {

std::atomic<std::uint64_t> g_interval_ms{0};

std::int64_t now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One mutex for line assembly+write so concurrent tickers from pool
// workers never interleave characters.
std::mutex& print_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void set_progress_interval_ms(std::uint64_t interval_ms) {
  g_interval_ms.store(interval_ms, std::memory_order_relaxed);
}

std::uint64_t progress_interval_ms() noexcept {
  return g_interval_ms.load(std::memory_order_relaxed);
}

Progress::Progress(std::string label, std::uint64_t total)
    : label_(std::move(label)),
      total_(total),
      interval_ms_(progress_interval_ms()),
      start_us_(now_us()),
      next_emit_us_(start_us_ + static_cast<std::int64_t>(interval_ms_) * 1000) {}

Progress::~Progress() { finish(); }

void Progress::tick(std::uint64_t n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  if (interval_ms_ == 0) return;
  const std::int64_t now = now_us();
  std::int64_t due = next_emit_us_.load(std::memory_order_relaxed);
  if (now < due) return;
  // Whichever ticker wins the CAS prints; losers raced the same line.
  if (next_emit_us_.compare_exchange_strong(
          due, now + static_cast<std::int64_t>(interval_ms_) * 1000,
          std::memory_order_relaxed)) {
    emit(/*final_line=*/false);
  }
}

void Progress::finish() {
  if (interval_ms_ == 0) return;
  if (finished_.exchange(true, std::memory_order_relaxed)) return;
  if (done_.load(std::memory_order_relaxed) == 0) return;
  emit(/*final_line=*/true);
}

void Progress::emit(bool final_line) {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::int64_t elapsed_us = now_us() - start_us_;
  const double elapsed_s =
      elapsed_us > 0 ? static_cast<double>(elapsed_us) / 1e6 : 1e-6;
  const double rate = static_cast<double>(done) / elapsed_s;

  char line[256];
  int len = 0;
  if (total_ > 0) {
    const double pct =
        100.0 * static_cast<double>(done) / static_cast<double>(total_);
    len = std::snprintf(line, sizeof(line),
                        "[progress] %s: %" PRIu64 "/%" PRIu64
                        " (%.1f%%)  %.1f/s",
                        label_.c_str(), done, total_, pct, rate);
    if (!final_line && rate > 0.0 && done < total_) {
      const double eta_s = static_cast<double>(total_ - done) / rate;
      len += std::snprintf(line + len, sizeof(line) - static_cast<size_t>(len),
                           "  eta %.0fs", eta_s);
    }
  } else {
    len = std::snprintf(line, sizeof(line),
                        "[progress] %s: %" PRIu64 "  %.1f/s", label_.c_str(),
                        done, rate);
  }
  if (final_line) {
    std::snprintf(line + len, sizeof(line) - static_cast<size_t>(len),
                  "  total %.1fs", elapsed_s);
  }

  std::lock_guard guard(print_mutex());
  std::fprintf(stderr, "%s\n", line);
}

}  // namespace patchdb::obs
