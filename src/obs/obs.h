// One-stop observability session. Constructing an ObsSession installs a
// fresh metrics registry and tracer as the process-global sinks and
// (by default) wires the default thread pool's queue-depth gauge and
// task-latency histogram; destroying it restores whatever was installed
// before, so sessions nest and tests can't leak state. report() captures
// everything recorded so far as a RunReport.
//
//   {
//     obs::ObsSession session("table2_augmentation");
//     run_pipeline();
//     obs::write_report_file(session.report(), "m.json");
//   }  // sinks restored
//
// Setting the PATCHDB_OBS_DISABLED environment variable (to anything
// but "0" / "") makes sessions inert: no sinks are installed, so every
// PATCHDB_TRACE_SPAN / counter_add in the pipeline takes its one-load
// disabled fast path. The obs-overhead CI check runs the same binary
// in both modes and diffs the wall time.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb::obs {

/// True when the PATCHDB_OBS_DISABLED environment variable is set to a
/// non-empty value other than "0". Checked once per ObsSession
/// construction (not cached), so tests can flip it.
bool obs_env_disabled() noexcept;

/// Wire `pool`'s observer to the *globally installed* registry: gauge
/// `pool.queue_depth`, histogram `pool.queue_depth.dist`, histogram
/// `pool.task_ms`, counters `pool.tasks` / `pool.busy_us`, gauge
/// `pool.threads`. Pass detach_pool to undo.
void attach_pool(util::ThreadPool& pool);
void detach_pool(util::ThreadPool& pool);

class ObsSession {
 public:
  struct Options {
    /// Attach util::default_pool() for the session's lifetime.
    bool attach_default_pool = true;
  };

  explicit ObsSession(std::string name) : ObsSession(std::move(name), Options{}) {}
  ObsSession(std::string name, Options options);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  MetricsRegistry& registry() noexcept { return registry_; }
  Tracer& tracer() noexcept { return tracer_; }
  const std::string& name() const noexcept { return name_; }

  double elapsed_ms() const;

  /// False when PATCHDB_OBS_DISABLED suppressed sink installation; the
  /// session then records nothing and report() is empty (name + wall).
  bool installed() const noexcept { return installed_; }

  /// Borrow a sampler whose timeline report() should fold in. The
  /// session does not own or start/stop it; callers start() it after
  /// attaching and stop() it before report(). Sample timestamps are
  /// re-anchored from the sampler's start to the tracer epoch so they
  /// share the spans' timebase.
  void attach_sampler(ResourceSampler* sampler) noexcept {
    sampler_ = sampler;
  }

  /// Snapshot metrics + spans now. Also derives `pool.utilization`
  /// (busy time / (wall x threads)) when the pool was attached, and
  /// embeds the attached sampler's timeline (schema stays v2 either way).
  RunReport report() const;

 private:
  std::string name_;
  Options options_;
  bool installed_ = false;
  std::chrono::steady_clock::time_point start_;
  MetricsRegistry registry_;
  Tracer tracer_;
  MetricsRegistry* previous_registry_ = nullptr;
  Tracer* previous_tracer_ = nullptr;
  ResourceSampler* sampler_ = nullptr;
};

}  // namespace patchdb::obs
