// Background resource sampler: a lightweight thread that takes periodic
// snapshots of process health while a pipeline runs — resident set size
// and peak RSS (read from /proc/self/status; zero on platforms without
// procfs), cumulative process CPU time, thread-pool size/backlog, and
// the tracer's span-drop count. The sample buffer is fixed-capacity and
// preallocated: once full the sampler keeps ticking (the live gauges
// stay fresh) but stops recording, counting the overflow instead of
// reallocating under a running pipeline. The collected timeline rides
// along in a patchdb.obs.v2 RunReport (`resource_timeline`) and feeds
// the Chrome trace exporter's counter tracks, so a Perfetto view of a
// run shows memory and queue depth under the span flame graph.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace patchdb::util {
class ThreadPool;
}  // namespace patchdb::util

namespace patchdb::obs {

/// One point on the resource timeline. `t_us` is relative to the
/// sampler's start; ObsSession re-anchors it to the tracer epoch when
/// assembling a report so counter tracks line up with the spans.
struct ResourceSample {
  std::int64_t t_us = 0;
  std::uint64_t rss_bytes = 0;       // current resident set (VmRSS)
  std::uint64_t peak_rss_bytes = 0;  // high-water mark (VmHWM)
  std::int64_t cpu_us = 0;           // cumulative process CPU time
  std::uint32_t pool_threads = 0;
  std::uint32_t pool_pending = 0;    // queued, not yet picked up
  std::uint32_t pool_running = 0;    // picked up, not yet finished
  std::uint64_t spans_dropped = 0;   // Tracer::dropped() at sample time
};

class ResourceSampler {
 public:
  struct Options {
    std::chrono::milliseconds interval{100};
    /// Hard cap on recorded samples; ticks past it count as overflow.
    std::size_t max_samples = 4096;
    /// Pool whose gauges each sample reads; nullptr = util::default_pool().
    util::ThreadPool* pool = nullptr;
    /// Mirror the latest sample into the installed metrics registry
    /// (gauges `proc.rss_bytes`, `proc.peak_rss_bytes`, `proc.cpu_us`).
    bool publish_gauges = true;
  };

  ResourceSampler() : ResourceSampler(Options{}) {}
  explicit ResourceSampler(Options options);
  ~ResourceSampler();  // stops and joins
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Take an immediate t=0 sample and launch the background thread.
  /// No-op when already running.
  void start();
  /// Take one final sample, stop the thread, and join it. Idempotent.
  void stop();
  bool running() const;

  /// Samples recorded so far (safe to call while running).
  std::vector<ResourceSample> samples() const;
  /// Ticks skipped because the buffer hit max_samples.
  std::size_t overflow() const;
  std::chrono::steady_clock::time_point start_time() const;

  /// One sample of the current process state, usable without a running
  /// sampler (t_us is 0). `pool` as in Options.
  static ResourceSample sample_now(util::ThreadPool* pool = nullptr);

 private:
  void run_loop();
  void record_locked(std::chrono::steady_clock::time_point now);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::vector<ResourceSample> samples_;
  std::size_t overflow_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
};

}  // namespace patchdb::obs
