#include "obs/report.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

#include "util/table.h"

namespace patchdb::obs {

namespace {

Json histogram_to_json(const HistogramSnapshot& h) {
  Json out = Json::object();
  out.set("count", Json(h.count));
  out.set("sum", Json(h.sum));
  if (h.count > 0) {
    out.set("min", Json(h.min));
    out.set("max", Json(h.max));
  }
  Json buckets = Json::array();
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    Json bucket = Json::object();
    if (b < h.bounds.size()) {
      bucket.set("le", Json(h.bounds[b]));
    }  // last bucket: no "le" = +inf
    bucket.set("count", Json(h.buckets[b]));
    buckets.push_back(std::move(bucket));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

HistogramSnapshot histogram_from_json(const std::string& name, const Json& json) {
  HistogramSnapshot h;
  h.name = name;
  h.count = static_cast<std::uint64_t>(json.at("count").as_number());
  h.sum = json.at("sum").as_number();
  if (json.contains("min")) h.min = json.at("min").as_number();
  if (json.contains("max")) h.max = json.at("max").as_number();
  for (const Json& bucket : json.at("buckets").as_array()) {
    if (bucket.contains("le")) h.bounds.push_back(bucket.at("le").as_number());
    h.buckets.push_back(
        static_cast<std::uint64_t>(bucket.at("count").as_number()));
  }
  return h;
}

Json span_to_json(const SpanRecord& s) {
  Json out = Json::object();
  out.set("name", Json(s.name));
  out.set("thread", Json(static_cast<std::uint64_t>(s.thread_index)));
  out.set("id", Json(s.span_id));
  out.set("parent", Json(s.parent_id));
  out.set("depth", Json(static_cast<std::uint64_t>(s.depth)));
  out.set("start_us", Json(static_cast<double>(s.start_us)));
  out.set("wall_us", Json(static_cast<double>(s.wall_us)));
  out.set("cpu_us", Json(static_cast<double>(s.cpu_us)));
  return out;
}

SpanRecord span_from_json(const Json& json) {
  SpanRecord s;
  s.name = json.at("name").as_string();
  s.thread_index = static_cast<std::uint32_t>(json.at("thread").as_number());
  s.span_id = static_cast<std::uint64_t>(json.at("id").as_number());
  s.parent_id = static_cast<std::uint64_t>(json.at("parent").as_number());
  s.depth = static_cast<std::uint32_t>(json.at("depth").as_number());
  s.start_us = static_cast<std::int64_t>(json.at("start_us").as_number());
  s.wall_us = static_cast<std::int64_t>(json.at("wall_us").as_number());
  s.cpu_us = static_cast<std::int64_t>(json.at("cpu_us").as_number());
  return s;
}

Json sample_to_json(const ResourceSample& s) {
  Json out = Json::object();
  out.set("t_us", Json(static_cast<double>(s.t_us)));
  out.set("rss_bytes", Json(s.rss_bytes));
  out.set("peak_rss_bytes", Json(s.peak_rss_bytes));
  out.set("cpu_us", Json(static_cast<double>(s.cpu_us)));
  out.set("pool_threads", Json(static_cast<std::uint64_t>(s.pool_threads)));
  out.set("pool_pending", Json(static_cast<std::uint64_t>(s.pool_pending)));
  out.set("pool_running", Json(static_cast<std::uint64_t>(s.pool_running)));
  out.set("spans_dropped", Json(s.spans_dropped));
  return out;
}

ResourceSample sample_from_json(const Json& json) {
  ResourceSample s;
  s.t_us = static_cast<std::int64_t>(json.at("t_us").as_number());
  s.rss_bytes = static_cast<std::uint64_t>(json.at("rss_bytes").as_number());
  s.peak_rss_bytes =
      static_cast<std::uint64_t>(json.at("peak_rss_bytes").as_number());
  s.cpu_us = static_cast<std::int64_t>(json.at("cpu_us").as_number());
  s.pool_threads = static_cast<std::uint32_t>(json.at("pool_threads").as_number());
  s.pool_pending = static_cast<std::uint32_t>(json.at("pool_pending").as_number());
  s.pool_running = static_cast<std::uint32_t>(json.at("pool_running").as_number());
  s.spans_dropped =
      static_cast<std::uint64_t>(json.at("spans_dropped").as_number());
  return s;
}

}  // namespace

Json RunReport::to_json() const {
  Json out = Json::object();
  out.set("report", Json(name));
  out.set("schema", Json(schema));
  out.set("wall_ms", Json(wall_ms));
  out.set("spans_dropped", Json(spans_dropped));

  Json counters = Json::object();
  for (const auto& [key, value] : metrics.counters) counters.set(key, Json(value));
  out.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (const auto& [key, value] : metrics.gauges) gauges.set(key, Json(value));
  out.set("gauges", std::move(gauges));

  Json histograms = Json::object();
  for (const HistogramSnapshot& h : metrics.histograms) {
    histograms.set(h.name, histogram_to_json(h));
  }
  out.set("histograms", std::move(histograms));

  Json span_array = Json::array();
  for (const SpanRecord& s : spans) span_array.push_back(span_to_json(s));
  out.set("spans", std::move(span_array));

  // Optional v2 block. Omitted when empty so v1 artifacts round-trip
  // byte-identically and samplerless v2 runs stay as small as v1 ones.
  if (!resource_timeline.empty()) {
    Json timeline = Json::array();
    for (const ResourceSample& s : resource_timeline) {
      timeline.push_back(sample_to_json(s));
    }
    out.set("resource_timeline", std::move(timeline));
  }
  return out;
}

RunReport RunReport::from_json(const Json& json) {
  RunReport report;
  report.name = json.at("report").as_string();
  report.schema = json.at("schema").as_string();
  if (report.schema != kReportSchemaV1 && report.schema != kReportSchemaV2) {
    throw JsonError("obs: unsupported report schema \"" + report.schema +
                    "\" (expected patchdb.obs.v1 or patchdb.obs.v2)");
  }
  report.wall_ms = json.at("wall_ms").as_number();
  report.spans_dropped =
      static_cast<std::uint64_t>(json.at("spans_dropped").as_number());
  for (const auto& [key, value] : json.at("counters").as_object()) {
    report.metrics.counters.emplace(
        key, static_cast<std::uint64_t>(value.as_number()));
  }
  for (const auto& [key, value] : json.at("gauges").as_object()) {
    report.metrics.gauges.emplace(key, value.as_number());
  }
  for (const auto& [key, value] : json.at("histograms").as_object()) {
    report.metrics.histograms.push_back(histogram_from_json(key, value));
  }
  for (const Json& span : json.at("spans").as_array()) {
    report.spans.push_back(span_from_json(span));
  }
  if (json.contains("resource_timeline")) {
    for (const Json& sample : json.at("resource_timeline").as_array()) {
      report.resource_timeline.push_back(sample_from_json(sample));
    }
  }
  return report;
}

std::string RunReport::render() const {
  std::string out;

  if (!metrics.counters.empty() || !metrics.gauges.empty()) {
    util::Table table("metrics — " + name);
    table.set_header({"Metric", "Kind", "Value"});
    for (const auto& [key, value] : metrics.counters) {
      table.add_row({key, "counter", std::to_string(value)});
    }
    if (!metrics.counters.empty() && !metrics.gauges.empty()) {
      table.add_separator();
    }
    for (const auto& [key, value] : metrics.gauges) {
      table.add_row({key, "gauge", util::format_double(value, 4)});
    }
    out += table.render();
  }

  if (!metrics.histograms.empty()) {
    util::Table table("histograms — " + name);
    table.set_header({"Histogram", "Count", "Mean", "p50", "p95", "Max"});
    for (const HistogramSnapshot& h : metrics.histograms) {
      table.add_row({h.name, std::to_string(h.count),
                     util::format_double(h.mean(), 3),
                     util::format_double(h.quantile(0.5), 3),
                     util::format_double(h.quantile(0.95), 3),
                     util::format_double(h.count > 0 ? h.max : 0.0, 3)});
    }
    out += table.render();
  }

  if (!spans.empty()) {
    // Aggregate by name: the span list itself can run long; the table
    // reports totals with nesting shown via the minimum recorded depth.
    struct Agg {
      std::size_t calls = 0;
      std::int64_t wall_us = 0;
      std::int64_t cpu_us = 0;
      std::uint32_t min_depth = 0xFFFFFFFF;
    };
    std::map<std::string, Agg> by_name;
    for (const SpanRecord& s : spans) {
      Agg& agg = by_name[s.name];
      ++agg.calls;
      agg.wall_us += s.wall_us;
      agg.cpu_us += s.cpu_us;
      agg.min_depth = std::min(agg.min_depth, s.depth);
    }
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.wall_us > b.second.wall_us;
    });
    util::Table table("spans — " + name);
    table.set_header({"Span", "Calls", "Wall ms", "CPU ms", "Depth"});
    for (const auto& [span_name, agg] : rows) {
      table.add_row({span_name, std::to_string(agg.calls),
                     util::format_double(static_cast<double>(agg.wall_us) / 1000.0, 2),
                     util::format_double(static_cast<double>(agg.cpu_us) / 1000.0, 2),
                     std::to_string(agg.min_depth)});
    }
    if (spans_dropped > 0) {
      table.add_note(std::to_string(spans_dropped) +
                     " spans dropped to ring overflow");
    }
    out += table.render();
  }

  if (!resource_timeline.empty()) {
    const ResourceSample& last = resource_timeline.back();
    std::uint64_t max_rss = 0;
    std::uint32_t max_pending = 0;
    for (const ResourceSample& s : resource_timeline) {
      max_rss = std::max(max_rss, s.rss_bytes);
      max_pending = std::max(max_pending, s.pool_pending);
    }
    const auto mb = [](std::uint64_t bytes) {
      return util::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
    };
    util::Table table("resource timeline — " + name);
    table.set_header({"Signal", "Value"});
    table.add_row({"samples", std::to_string(resource_timeline.size())});
    table.add_row({"rss max (MB)", mb(max_rss)});
    table.add_row({"rss peak / VmHWM (MB)", mb(last.peak_rss_bytes)});
    table.add_row({"process cpu (ms)",
                   util::format_double(static_cast<double>(last.cpu_us) / 1000.0, 1)});
    table.add_row({"pool pending max", std::to_string(max_pending)});
    out += table.render();
  }

  out += "wall: " + util::format_double(wall_ms, 1) + " ms\n";
  return out;
}

void write_report_file(const RunReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs: cannot open " + path + " for writing");
  out << report.to_json().dump(2) << '\n';
  if (!out) throw std::runtime_error("obs: failed writing " + path);
}

RunReport read_report_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("obs: cannot read " + path);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  return RunReport::from_json(Json::parse(text));
}

}  // namespace patchdb::obs
