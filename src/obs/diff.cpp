#include "obs/diff.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace patchdb::obs {

namespace {

std::optional<double> histogram_stat(const HistogramSnapshot& h,
                                     std::string_view stat) {
  if (stat == "count") return static_cast<double>(h.count);
  if (stat == "mean") return h.mean();
  if (stat == "max") return h.count > 0 ? h.max : 0.0;
  if (stat.size() > 1 && stat.front() == 'p') {
    char* end = nullptr;
    const std::string digits(stat.substr(1));
    const double q = std::strtod(digits.c_str(), &end);
    if (end != digits.c_str() && *end == '\0' && q > 0.0 && q < 100.0) {
      return h.quantile(q / 100.0);
    }
  }
  return std::nullopt;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Strict full-consumption double parse; rejects "", "5x", "nan".
bool parse_number(std::string_view text, double& out) {
  const std::string owned(text);
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (end == owned.c_str() || *end != '\0' || !std::isfinite(v)) return false;
  out = v;
  return true;
}

}  // namespace

std::optional<double> lookup_metric(const RunReport& report,
                                    std::string_view name) {
  if (name == "wall_ms") return report.wall_ms;

  const std::size_t at = name.rfind('@');
  if (at != std::string_view::npos) {
    const std::string_view hist_name = name.substr(0, at);
    const std::string_view stat = name.substr(at + 1);
    for (const HistogramSnapshot& h : report.metrics.histograms) {
      if (h.name == hist_name) return histogram_stat(h, stat);
    }
    return std::nullopt;
  }

  if (const auto it = report.metrics.counters.find(std::string(name));
      it != report.metrics.counters.end()) {
    return static_cast<double>(it->second);
  }
  if (const auto it = report.metrics.gauges.find(std::string(name));
      it != report.metrics.gauges.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<DiffResult> diff_reports(const RunReport& baseline,
                                     const RunReport& candidate,
                                     const std::vector<DiffRule>& rules) {
  std::vector<DiffResult> results;
  results.reserve(rules.size());

  for (const DiffRule& rule : rules) {
    DiffResult r;
    r.rule = rule;
    r.baseline = lookup_metric(baseline, rule.metric);
    r.candidate = lookup_metric(candidate, rule.metric);

    if (rule.kind == DiffRule::Kind::kRequire) {
      if (!r.candidate) {
        r.ok = false;
        r.message = "FAIL " + rule.metric + " missing from candidate";
      } else if (rule.has_required_value &&
                 *r.candidate != rule.required_value) {
        r.ok = false;
        r.message = "FAIL " + rule.metric + " = " + format_value(*r.candidate) +
                    " (required " + format_value(rule.required_value) + ")";
      } else {
        r.ok = true;
        r.message = "OK   " + rule.metric + " = " + format_value(*r.candidate);
      }
      results.push_back(std::move(r));
      continue;
    }

    if (rule.kind == DiffRule::Kind::kMin) {
      if (!r.candidate) {
        r.ok = false;
        r.message = "FAIL " + rule.metric + " missing from candidate";
      } else {
        r.ok = *r.candidate >= rule.required_value;
        r.message = std::string(r.ok ? "OK   " : "FAIL ") + rule.metric +
                    " = " + format_value(*r.candidate) + " (floor " +
                    format_value(rule.required_value) + ")";
      }
      results.push_back(std::move(r));
      continue;
    }

    if (!r.baseline || !r.candidate) {
      r.ok = false;
      r.message = "FAIL " + rule.metric + " missing from " +
                  (!r.baseline ? "baseline" : "candidate");
      results.push_back(std::move(r));
      continue;
    }

    const double base = *r.baseline;
    const double cand = *r.candidate;
    // Relative change in percent; a zero baseline only passes when the
    // candidate is also zero (any change from 0 is unbounded).
    double change_pct = 0.0;
    bool unbounded = false;
    if (base != 0.0) {
      change_pct = 100.0 * (cand - base) / std::fabs(base);
    } else if (cand != 0.0) {
      unbounded = true;
    }

    const bool increase_rule = rule.kind == DiffRule::Kind::kMaxIncrease;
    if (unbounded) {
      r.ok = false;
    } else if (increase_rule) {
      r.ok = change_pct <= rule.threshold_pct;
    } else {
      r.ok = change_pct >= -rule.threshold_pct;
    }

    char detail[160];
    std::snprintf(detail, sizeof(detail), "%s -> %s (%+.1f%%, limit %s%.1f%%)",
                  format_value(base).c_str(), format_value(cand).c_str(),
                  unbounded ? (cand > 0 ? 100.0 : -100.0) : change_pct,
                  increase_rule ? "+" : "-", rule.threshold_pct);
    r.message =
        std::string(r.ok ? "OK   " : "FAIL ") + rule.metric + " " + detail;
    results.push_back(std::move(r));
  }
  return results;
}

bool parse_threshold_spec(std::string_view spec, DiffRule::Kind kind,
                          DiffRule& out, std::string& error) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    error = "expected metric:PCT, got \"" + std::string(spec) + "\"";
    return false;
  }
  std::string_view pct = spec.substr(colon + 1);
  if (!pct.empty() && pct.back() == '%') pct.remove_suffix(1);
  double threshold = 0.0;
  if (!parse_number(pct, threshold) || threshold < 0.0) {
    error = "bad threshold in \"" + std::string(spec) +
            "\" (want a non-negative percentage)";
    return false;
  }
  out.kind = kind;
  out.metric = std::string(spec.substr(0, colon));
  out.threshold_pct = threshold;
  out.has_required_value = false;
  return true;
}

bool parse_require_spec(std::string_view spec, DiffRule& out,
                        std::string& error) {
  if (spec.empty()) {
    error = "expected metric or metric=VALUE";
    return false;
  }
  out.kind = DiffRule::Kind::kRequire;
  const std::size_t eq = spec.rfind('=');
  if (eq == std::string_view::npos) {
    out.metric = std::string(spec);
    out.has_required_value = false;
    return true;
  }
  if (eq == 0 || eq + 1 == spec.size() ||
      !parse_number(spec.substr(eq + 1), out.required_value)) {
    error = "bad required value in \"" + std::string(spec) + "\"";
    return false;
  }
  out.metric = std::string(spec.substr(0, eq));
  out.has_required_value = true;
  return true;
}

bool parse_min_spec(std::string_view spec, DiffRule& out, std::string& error) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    error = "expected metric:VALUE, got \"" + std::string(spec) + "\"";
    return false;
  }
  if (!parse_number(spec.substr(colon + 1), out.required_value)) {
    error = "bad floor in \"" + std::string(spec) + "\" (want a number)";
    return false;
  }
  out.kind = DiffRule::Kind::kMin;
  out.metric = std::string(spec.substr(0, colon));
  out.has_required_value = true;
  return true;
}

}  // namespace patchdb::obs
