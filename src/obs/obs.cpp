#include "obs/obs.h"

#include <cstdlib>
#include <cstring>

namespace patchdb::obs {

bool obs_env_disabled() noexcept {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup
  const char* value = std::getenv("PATCHDB_OBS_DISABLED");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

void attach_pool(util::ThreadPool& pool) {
  util::ThreadPool::Observer observer;
  observer.queue_depth = [](std::size_t depth) {
    const double d = static_cast<double>(depth);
    gauge_set("pool.queue_depth", d);
    histogram_observe("pool.queue_depth.dist", d, BucketLayout::count());
  };
  observer.task_ms = [](double ms) {
    counter_add("pool.tasks", 1);
    counter_add("pool.busy_us", static_cast<std::uint64_t>(ms * 1000.0));
    histogram_observe("pool.task_ms", ms, BucketLayout::time_ms());
  };
  gauge_set("pool.threads", static_cast<double>(pool.size()));
  pool.set_observer(std::move(observer));
}

void detach_pool(util::ThreadPool& pool) { pool.set_observer({}); }

ObsSession::ObsSession(std::string name, Options options)
    : name_(std::move(name)),
      options_(options),
      installed_(!obs_env_disabled()),
      start_(std::chrono::steady_clock::now()) {
  if (!installed_) return;  // inert session: all sinks stay as they were
  previous_registry_ = install_registry(&registry_);
  previous_tracer_ = install_tracer(&tracer_);
  if (options_.attach_default_pool) attach_pool(util::default_pool());
}

ObsSession::~ObsSession() {
  if (!installed_) return;
  if (options_.attach_default_pool) detach_pool(util::default_pool());
  install_tracer(previous_tracer_);
  install_registry(previous_registry_);
}

double ObsSession::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

RunReport ObsSession::report() const {
  RunReport report;
  report.name = name_;
  report.wall_ms = elapsed_ms();
  report.spans_dropped = tracer_.dropped();
  report.metrics = registry_.snapshot();
  report.spans = tracer_.snapshot();
  // Derived gauge: fraction of the session's wall x threads the pool
  // spent running tasks.
  const double busy_us =
      static_cast<double>(report.metrics.counter("pool.busy_us"));
  const double threads = report.metrics.gauge("pool.threads");
  if (busy_us > 0.0 && threads > 0.0 && report.wall_ms > 0.0) {
    const double utilization = busy_us / (report.wall_ms * 1000.0 * threads);
    report.metrics.gauges["pool.utilization"] = utilization;
  }
  if (sampler_ != nullptr) {
    report.resource_timeline = sampler_->samples();
    // Samples are stamped relative to the sampler's own start; shift
    // them onto the tracer epoch so the exporter's counter tracks line
    // up with the span flame graph.
    const std::int64_t offset =
        std::chrono::duration_cast<std::chrono::microseconds>(
            sampler_->start_time() - tracer_.epoch())
            .count();
    for (ResourceSample& s : report.resource_timeline) s.t_us += offset;
  }
  return report;
}

}  // namespace patchdb::obs
