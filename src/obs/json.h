// Minimal JSON value model for the observability layer: enough to write
// RunReports, read them back (round-trip tested), and validate emitted
// bench artifacts — no external dependency. Numbers are stored as
// double; the writer emits integers without a fractional part so
// counter values survive the round trip exactly up to 2^53.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::obs {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps object keys sorted, which makes the output diffable
/// across runs — the point of a perf-trajectory artifact.
using JsonObject = std::map<std::string, Json, std::less<>>;

/// Thrown by parse() on malformed input and by the typed accessors on a
/// kind mismatch.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                       // NOLINT
  Json(double n) : kind_(Kind::kNumber), number_(n) {}                 // NOLINT
  Json(int n) : kind_(Kind::kNumber), number_(n) {}                    // NOLINT
  Json(long n) : kind_(Kind::kNumber),                                 // NOLINT
                 number_(static_cast<double>(n)) {}
  Json(unsigned long n) : kind_(Kind::kNumber),                        // NOLINT
                          number_(static_cast<double>(n)) {}
  Json(unsigned long long n) : kind_(Kind::kNumber),                   // NOLINT
                               number_(static_cast<double>(n)) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {} // NOLINT
  Json(std::string_view s) : kind_(Kind::kString), string_(s) {}       // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}            // NOLINT
  Json(JsonArray a)                                                    // NOLINT
      : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o)                                                   // NOLINT
      : kind_(Kind::kObject),
        object_(std::make_shared<JsonObject>(std::move(o))) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member access; `at` throws on a missing key, `get` returns
  /// null. Both throw when this value is not an object.
  const Json& at(std::string_view key) const;
  Json get(std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Insert/overwrite an object member (value must be an object).
  void set(std::string key, Json value);
  /// Append to an array (value must be an array).
  void push_back(Json value);

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per
  /// nesting level; 0 emits the compact single-line form.
  std::string dump(int indent = 0) const;

  /// Strict recursive-descent parse of a complete JSON document; throws
  /// JsonError on any syntax error or trailing garbage.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // shared_ptr keeps Json copyable/cheap to move without writing a
  // recursive variant by hand; sharing is never observable because every
  // mutation path goes through the non-const accessors of one owner.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace patchdb::obs
