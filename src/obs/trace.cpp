#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.h"

#if defined(__linux__)
#include <time.h>  // NOLINT(modernize-deprecated-headers): clock_gettime
#endif

namespace patchdb::obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<std::uint64_t> g_generation{0};

std::int64_t thread_cpu_us() noexcept {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000;
#else
  return 0;
#endif
}

}  // namespace

/// Fixed-capacity span ring. push() never allocates once the slots are
/// reserved: overflow overwrites the oldest record and bumps `dropped`,
/// plus the live `obs.spans_dropped` counter so a running sampler (or a
/// human watching `patchdb metrics`) sees drops before the final report.
struct Tracer::ThreadRing {
  explicit ThreadRing(std::size_t ring_capacity) : capacity(ring_capacity) {
    slots.reserve(capacity);
  }

  void push(SpanRecord&& record) {
    bool overflowed = false;
    {
      std::lock_guard lock(mutex);
      if (slots.size() < capacity) {
        slots.push_back(std::move(record));
      } else {
        slots[next] = std::move(record);
        next = (next + 1) % capacity;
        ++dropped;
        overflowed = true;
      }
    }
    // Outside the ring lock: counter_add takes the registry's stripe
    // lock-free path but there is no reason to nest the two.
    if (overflowed) counter_add("obs.spans_dropped", 1);
  }

  std::mutex mutex;
  const std::size_t capacity;
  std::uint32_t thread_index = 0;
  std::vector<SpanRecord> slots;
  std::size_t next = 0;  // oldest slot once the ring has wrapped
  std::uint64_t dropped = 0;
};

namespace {

/// Per-thread tracer attachment: the ring this thread writes to, the
/// tracer generation it belongs to, and the open-span stack that gives
/// children their parent ids. A generation mismatch (tracer swapped)
/// resets everything lazily on the next span open.
struct LocalTraceState {
  std::uint64_t generation = 0;
  std::shared_ptr<Tracer::ThreadRing> ring;
  std::vector<std::uint64_t> stack;
};

LocalTraceState& local_trace_state() {
  thread_local LocalTraceState state;
  return state;
}

}  // namespace

std::size_t parse_span_ring_capacity(const char* text) {
  if (text == nullptr || *text == '\0') return kSpanRingCapacity;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || text[0] == '-' || value == 0) {
    throw std::runtime_error(
        "obs: invalid PATCHDB_SPAN_RING value \"" + std::string(text) +
        "\" (want a positive integer number of spans per thread)");
  }
  return static_cast<std::size_t>(value);
}

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup
      ring_capacity_(parse_span_ring_capacity(std::getenv("PATCHDB_SPAN_RING"))),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

Tracer::~Tracer() {
  // Defensive: never leave a dangling global behind.
  Tracer* self = this;
  g_tracer.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

std::shared_ptr<Tracer::ThreadRing> Tracer::local_ring() {
  LocalTraceState& state = local_trace_state();
  if (state.generation == generation_ && state.ring) return state.ring;
  auto ring = std::make_shared<ThreadRing>(ring_capacity_);
  {
    std::lock_guard lock(rings_mutex_);
    ring->thread_index = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(ring);
  }
  state.generation = generation_;
  state.ring = ring;
  state.stack.clear();
  return ring;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const std::shared_ptr<ThreadRing>& ring : rings) {
    std::lock_guard lock(ring->mutex);
    // Oldest first: [next, end) then [0, next) once wrapped.
    for (std::size_t i = 0; i < ring->slots.size(); ++i) {
      const std::size_t idx = ring->slots.size() < ring->capacity
                                  ? i
                                  : (ring->next + i) % ring->capacity;
      out.push_back(ring->slots[idx]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.thread_index != b.thread_index) {
                       return a.thread_index < b.thread_index;
                     }
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     // Sub-microsecond ties: span ids are assigned at
                     // open, so this keeps parents ahead of children.
                     return a.span_id < b.span_id;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::uint64_t total = 0;
  std::lock_guard lock(rings_mutex_);
  for (const std::shared_ptr<ThreadRing>& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

Tracer* install_tracer(Tracer* tracer) noexcept {
  return g_tracer.exchange(tracer, std::memory_order_acq_rel);
}

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_acquire); }

ScopedSpan::ScopedSpan(std::string_view name) {
  Tracer* t = tracer();
  if (t == nullptr) return;  // disabled: nothing below runs
  LocalTraceState& state = local_trace_state();
  if (state.generation != t->generation_ || !state.ring) t->local_ring();
  active_ = true;
  generation_ = t->generation_;
  name_ = name;
  epoch_ = t->epoch();
  parent_id_ = state.stack.empty() ? 0 : state.stack.back();
  depth_ = static_cast<std::uint32_t>(state.stack.size());
  span_id_ = t->next_span_id();
  state.stack.push_back(span_id_);
  cpu_start_us_ = thread_cpu_us();
  wall_start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto wall_end = std::chrono::steady_clock::now();
  const std::int64_t cpu_end_us = thread_cpu_us();
  LocalTraceState& state = local_trace_state();
  // If the tracer was swapped while this span was open, its ring (still
  // held by `state.ring` only if the generation matches) is gone for
  // this thread; drop the record rather than write into a new tracer.
  if (state.generation != generation_ || !state.ring) return;
  // Unwind the open-span stack down to (and including) this span. Spans
  // are strictly scoped so this is normally a single pop.
  while (!state.stack.empty() && state.stack.back() != span_id_) {
    state.stack.pop_back();
  }
  if (!state.stack.empty()) state.stack.pop_back();

  SpanRecord record;
  record.name = std::string(name_);
  record.thread_index = state.ring->thread_index;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        wall_start_ - epoch_)
                        .count();
  record.wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(wall_end - wall_start_)
          .count();
  record.cpu_us = cpu_end_us > cpu_start_us_ ? cpu_end_us - cpu_start_us_ : 0;
  state.ring->push(std::move(record));
}

}  // namespace patchdb::obs
