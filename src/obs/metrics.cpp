#include "obs/metrics.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>

namespace patchdb::obs {

namespace {

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) noexcept {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// CAS-accumulate a double stored as bits in an atomic u64.
void atomic_double_add(std::atomic<std::uint64_t>& bits, double delta) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, double_bits(bits_double(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

void atomic_double_min(std::atomic<std::uint64_t>& bits, double value) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (value < bits_double(expected) &&
         !bits.compare_exchange_weak(expected, double_bits(value),
                                     std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<std::uint64_t>& bits, double value) noexcept {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (value > bits_double(expected) &&
         !bits.compare_exchange_weak(expected, double_bits(value),
                                     std::memory_order_relaxed)) {
  }
}

std::atomic<MetricsRegistry*> g_registry{nullptr};

}  // namespace

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

const BucketLayout& BucketLayout::time_ms() {
  static const BucketLayout layout{{0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
                                    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
                                    2500.0, 5000.0, 10000.0}};
  return layout;
}

const BucketLayout& BucketLayout::ratio() {
  static const BucketLayout layout = [] {
    BucketLayout l;
    for (int i = 1; i <= 20; ++i) l.bounds.push_back(0.05 * i);
    return l;
  }();
  return layout;
}

const BucketLayout& BucketLayout::count() {
  static const BucketLayout layout = [] {
    BucketLayout l;
    for (double b = 1.0; b <= 16'777'216.0; b *= 4.0) l.bounds.push_back(b);
    return l;
  }();
  return layout;
}

Histogram::Histogram(const BucketLayout& layout)
    : bounds_(layout.bounds),
      buckets_(kMetricShards * (layout.bounds.size() + 1)),
      min_bits_(double_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_bits(-std::numeric_limits<double>::infinity())) {}

void Histogram::observe(double value) noexcept {
  const std::size_t shard = thread_shard();
  Shard& s = shards_[shard];
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(s.sum_bits, value);
  // First bucket whose upper bound admits the value; last slot = +inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[shard * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  atomic_double_min(min_bits_, value);
  atomic_double_max(max_bits_, value);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += bits_double(s.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

double Histogram::min() const noexcept {
  return bits_double(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const noexcept {
  return bits_double(max_bits_.load(std::memory_order_relaxed));
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  const std::size_t n = bounds_.size() + 1;
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t b = 0; b < n; ++b) {
      out[b] += buckets_[shard * n + b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (seen + in_bucket < target) {
      seen += in_bucket;
      continue;
    }
    const double lo = b == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                             : bounds[b - 1];
    const double hi = b < bounds.size() ? bounds[b] : max;
    if (in_bucket <= 0.0) return std::clamp(hi, min, max);
    const double frac = (target - seen) / in_bucket;
    // Clamp to the observed range: interpolation inside the final
    // occupied bucket would otherwise report values above the true max.
    return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min, max);
  }
  return max;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::gauge(std::string_view name) const noexcept {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0.0 : it->second;
}

template <typename T, typename... Args>
T& MetricsRegistry::find_or_create(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
    std::string_view name, Args&&... args) {
  {
    std::shared_lock lock(mutex_);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  const auto inserted = map.emplace(
      std::string(name), std::make_unique<T>(std::forward<Args>(args)...));
  return *inserted.first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const BucketLayout& layout) {
  return find_or_create(histograms_, name, layout);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::shared_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    h.bounds = histogram->bounds();
    h.buckets = histogram->bucket_counts();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

MetricsRegistry* install_registry(MetricsRegistry* registry) noexcept {
  return g_registry.exchange(registry, std::memory_order_acq_rel);
}

MetricsRegistry* registry() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

void counter_add(std::string_view name, std::uint64_t delta) noexcept {
  if (MetricsRegistry* r = registry()) r->counter(name).add(delta);
}

void gauge_set(std::string_view name, double value) noexcept {
  if (MetricsRegistry* r = registry()) r->gauge(name).set(value);
}

void gauge_add(std::string_view name, double delta) noexcept {
  if (MetricsRegistry* r = registry()) r->gauge(name).add(delta);
}

void histogram_observe(std::string_view name, double value) noexcept {
  if (MetricsRegistry* r = registry()) r->histogram(name).observe(value);
}

void histogram_observe(std::string_view name, double value,
                       const BucketLayout& layout) noexcept {
  if (MetricsRegistry* r = registry()) r->histogram(name, layout).observe(value);
}

}  // namespace patchdb::obs
