#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace patchdb::obs {

namespace {

[[noreturn]] void kind_error(const char* want) {
  throw JsonError(std::string("json: value is not ") + want);
}

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most writers
    out += "null";
    return;
  }
  // Integers (the common case: counters, bucket counts) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP code point as UTF-8 for general inputs.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}

const JsonArray& Json::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return *array_;
}

const JsonObject& Json::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return *object_;
}

JsonArray& Json::as_array() {
  if (kind_ != Kind::kArray) kind_error("an array");
  if (array_.use_count() > 1) array_ = std::make_shared<JsonArray>(*array_);
  return *array_;
}

JsonObject& Json::as_object() {
  if (kind_ != Kind::kObject) kind_error("an object");
  if (object_.use_count() > 1) object_ = std::make_shared<JsonObject>(*object_);
  return *object_;
}

const Json& Json::at(std::string_view key) const {
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return it->second;
}

Json Json::get(std::string_view key) const {
  const JsonObject& object = as_object();
  const auto it = object.find(key);
  return it == object.end() ? Json() : it->second;
}

bool Json::contains(std::string_view key) const {
  const JsonObject& object = as_object();
  return object.find(key) != object.end();
}

void Json::set(std::string key, Json value) {
  as_object().insert_or_assign(std::move(key), std::move(value));
}

void Json::push_back(Json value) { as_array().push_back(std::move(value)); }

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: write_number(out, number_); break;
    case Kind::kString: write_escaped(out, string_); break;
    case Kind::kArray: {
      const JsonArray& array = *array_;
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        array[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      const JsonObject& object = *object_;
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        write_escaped(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        value.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kNumber: return a.number_ == b.number_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return *a.array_ == *b.array_;
    case Json::Kind::kObject: return *a.object_ == *b.object_;
  }
  return false;
}

}  // namespace patchdb::obs
