#include "obs/sampler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

#if defined(__linux__)
#include <time.h>  // NOLINT(modernize-deprecated-headers): clock_gettime
#endif

namespace patchdb::obs {

namespace {

std::int64_t process_cpu_us() noexcept {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000;
#else
  return 0;
#endif
}

/// VmRSS / VmHWM out of /proc/self/status, in bytes. Both zero when the
/// file is unreadable (non-Linux, restricted sandboxes) — the timeline
/// still carries CPU and pool gauges there.
void read_memory(std::uint64_t& rss_bytes, std::uint64_t& peak_bytes) noexcept {
  rss_bytes = 0;
  peak_bytes = 0;
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::uint64_t kb = 0;
    if (std::sscanf(line, "VmRSS: %lu kB", &kb) == 1) {  // NOLINT(cert-err34-c)
      rss_bytes = kb * 1024;
    } else if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) {  // NOLINT(cert-err34-c)
      peak_bytes = kb * 1024;
    }
    if (rss_bytes != 0 && peak_bytes != 0) break;
  }
  std::fclose(f);
#endif
}

}  // namespace

ResourceSampler::ResourceSampler(Options options) : options_(options) {
  if (options_.interval <= std::chrono::milliseconds(0)) {
    options_.interval = std::chrono::milliseconds(1);
  }
  if (options_.max_samples == 0) options_.max_samples = 1;
  samples_.reserve(options_.max_samples);
}

ResourceSampler::~ResourceSampler() { stop(); }

ResourceSample ResourceSampler::sample_now(util::ThreadPool* pool) {
  ResourceSample s;
  read_memory(s.rss_bytes, s.peak_rss_bytes);
  s.cpu_us = process_cpu_us();
  util::ThreadPool& p = pool != nullptr ? *pool : util::default_pool();
  s.pool_threads = static_cast<std::uint32_t>(p.size());
  s.pool_pending = static_cast<std::uint32_t>(p.pending());
  s.pool_running = static_cast<std::uint32_t>(p.running());
  if (Tracer* t = tracer()) s.spans_dropped = t->dropped();
  return s;
}

void ResourceSampler::record_locked(std::chrono::steady_clock::time_point now) {
  ResourceSample s = sample_now(options_.pool);
  s.t_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - start_).count();
  if (options_.publish_gauges) {
    gauge_set("proc.rss_bytes", static_cast<double>(s.rss_bytes));
    gauge_set("proc.peak_rss_bytes", static_cast<double>(s.peak_rss_bytes));
    gauge_set("proc.cpu_us", static_cast<double>(s.cpu_us));
  }
  if (samples_.size() < options_.max_samples) {
    samples_.push_back(s);
  } else {
    ++overflow_;
  }
}

void ResourceSampler::start() {
  std::unique_lock lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  samples_.clear();
  overflow_ = 0;
  start_ = std::chrono::steady_clock::now();
  record_locked(start_);
  thread_ = std::thread([this] { run_loop(); });
}

void ResourceSampler::stop() {
  {
    std::unique_lock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock lock(mutex_);
  running_ = false;
  // One closing sample so short timelines still show their end state.
  record_locked(std::chrono::steady_clock::now());
}

bool ResourceSampler::running() const {
  std::unique_lock lock(mutex_);
  return running_;
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::unique_lock lock(mutex_);
  return samples_;
}

std::size_t ResourceSampler::overflow() const {
  std::unique_lock lock(mutex_);
  return overflow_;
}

std::chrono::steady_clock::time_point ResourceSampler::start_time() const {
  std::unique_lock lock(mutex_);
  return start_;
}

void ResourceSampler::run_loop() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    // wait_for under the sampler's own lock: record_locked never blocks
    // on anything that waits for this thread, so no deadlock is
    // possible, and stop() wakes the wait immediately.
    if (cv_.wait_for(lock, options_.interval, [this] { return stop_requested_; })) {
      return;
    }
    record_locked(std::chrono::steady_clock::now());
  }
}

}  // namespace patchdb::obs
