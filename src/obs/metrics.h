// Lock-cheap metrics registry: counters, gauges, and fixed-bucket
// histograms, updated through per-thread shards (cache-line padded
// atomic stripes) and aggregated only when a snapshot is taken.
//
// Metric names follow the `stage.metric` dotted convention
// ("distance.rows", "pool.task_ms", "augment.round.3.hit_ratio") so the
// JSON artifact groups naturally and future PRs can diff trajectories.
//
// Cost model:
//   - no registry installed: one relaxed atomic load per call site
//     (the macros below compile to nothing under PATCHDB_OBS_DISABLED);
//   - registry installed: one shared-lock hash lookup plus one relaxed
//     fetch_add on the caller's stripe. Instrumentation is placed at
//     block/round/task granularity, never per matrix element.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::obs {

/// Number of counter stripes. Threads hash onto stripes round-robin;
/// 16 stripes keep the false-sharing odds low for the pool sizes the
/// repo uses (hardware_concurrency workers) without bloating snapshots.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread stripe index in [0, kMetricShards).
std::size_t thread_shard() noexcept;

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-writer-wins double value (plus add() for accumulating gauges
/// like queue depth deltas). Single atomic: gauges are set at round or
/// configuration granularity, not in hot loops.
class Gauge {
 public:
  void set(double value) noexcept {
    bits_.store(encode(value), std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    std::uint64_t expected = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(expected, encode(decode(expected) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t encode(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double decode(std::uint64_t bits) noexcept {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0x0ULL};  // 0.0
};

/// Fixed upper-bound bucket layout shared by histograms of one unit.
/// The last implicit bucket is +inf; `bounds` must be strictly
/// ascending.
struct BucketLayout {
  std::vector<double> bounds;

  /// Latencies in milliseconds: 0.05 ms .. 10 s, roughly 1-2.5-5 steps.
  static const BucketLayout& time_ms();
  /// Ratios/fractions in [0, 1], 0.05 steps.
  static const BucketLayout& ratio();
  /// Item counts: powers of four from 1 to ~16M.
  static const BucketLayout& count();
};

class Histogram {
 public:
  explicit Histogram(const BucketLayout& layout);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// +inf / -inf when empty.
  double min() const noexcept;
  double max() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // double, CAS-accumulated
    // bucket counts live in a flat array indexed [shard][bucket]
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_{};
  std::vector<std::atomic<std::uint64_t>> buckets_;  // kMetricShards * n_buckets
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;
};

/// Aggregated, immutable view of a registry at one point in time.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // undefined when count == 0
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1

  double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Linear-interpolated quantile estimate from the bucket counts
  /// (q in [0,1]); exact min/max at the extremes.
  double quantile(double q) const noexcept;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<HistogramSnapshot> histograms;

  const HistogramSnapshot* histogram(std::string_view name) const noexcept;
  std::uint64_t counter(std::string_view name) const noexcept;
  double gauge(std::string_view name) const noexcept;  // 0.0 when absent
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (metrics are never removed).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       const BucketLayout& layout = BucketLayout::time_ms());

  MetricsSnapshot snapshot() const;

 private:
  template <typename T, typename... Args>
  T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                    std::string_view name, Args&&... args);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-global sink. Null by default: every instrumentation call
/// site first does one relaxed load and bails, so uninstrumented runs
/// pay (almost) nothing. install_registry returns the previous sink so
/// scoped installs can nest (see ObsSession).
MetricsRegistry* install_registry(MetricsRegistry* registry) noexcept;
MetricsRegistry* registry() noexcept;

/// Convenience call-site helpers: no-ops when no registry is installed.
void counter_add(std::string_view name, std::uint64_t delta = 1) noexcept;
void gauge_set(std::string_view name, double value) noexcept;
void gauge_add(std::string_view name, double delta) noexcept;
void histogram_observe(std::string_view name, double value) noexcept;
void histogram_observe(std::string_view name, double value,
                       const BucketLayout& layout) noexcept;

}  // namespace patchdb::obs

// Compile-time kill switch: -DPATCHDB_OBS_DISABLED strips every metric
// call site from the binary (the RAII span macro in trace.h honors the
// same flag). The default build keeps them: the runtime null-registry
// check is a single relaxed load.
#if defined(PATCHDB_OBS_DISABLED)
#define PATCHDB_COUNTER_ADD(name, delta) ((void)0)
#define PATCHDB_GAUGE_SET(name, value) ((void)0)
#define PATCHDB_GAUGE_ADD(name, delta) ((void)0)
#define PATCHDB_HISTOGRAM_OBSERVE(name, value) ((void)0)
#else
#define PATCHDB_COUNTER_ADD(name, delta) \
  ::patchdb::obs::counter_add((name), (delta))
#define PATCHDB_GAUGE_SET(name, value) ::patchdb::obs::gauge_set((name), (value))
#define PATCHDB_GAUGE_ADD(name, delta) ::patchdb::obs::gauge_add((name), (delta))
#define PATCHDB_HISTOGRAM_OBSERVE(name, value) \
  ::patchdb::obs::histogram_observe((name), (value))
#endif
