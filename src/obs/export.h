// Chrome trace-event exporter: converts a RunReport into the Trace
// Event "JSON object format" that chrome://tracing and Perfetto load
// directly. Per-thread metadata events name the tracks, every completed
// SpanRecord becomes one "X" (complete) duration event whose ts/dur
// nest exactly as the spans did, and the resource timeline (when the
// report carries one) becomes "C" counter tracks — RSS, process CPU
// rate, pool backlog, span drops — under the flame graph. Everything is
// emitted through obs::Json, so an exported trace parses back through
// the repo's own parser (the golden test relies on that).
#pragma once

#include <string>

#include "obs/json.h"
#include "obs/report.h"

namespace patchdb::obs {

/// The whole report as one loadable trace document:
///   {"displayTimeUnit": "ms", "otherData": {...}, "traceEvents": [...]}
Json trace_events_json(const RunReport& report);

/// Serialize and write the trace for `report` to `path`. Throws
/// std::runtime_error on I/O failure.
void write_trace_file(const RunReport& report, const std::string& path);

}  // namespace patchdb::obs
