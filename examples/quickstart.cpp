// Quickstart: the five-minute tour of the PatchDB library.
//
//   1. Parse a real git security patch (the paper's Listing 1).
//   2. Extract its 60-dimensional Table I feature vector.
//   3. Categorize its code-change pattern (Table V taxonomy).
//   4. Build a miniature PatchDB end to end — simulated NVD crawl,
//      nearest-link wild augmentation with oracle verification, and
//      source-level synthetic oversampling.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/categorize.h"
#include "core/patchdb.h"
#include "diff/parse.h"
#include "feature/features.h"

namespace {

// The paper's Listing 1: the fix for CVE-2019-20912 (stack underflow).
constexpr const char* kSecurityPatch =
    "commit b84c2cab55948a5ee70860779b2640913e3ee1ed\n"
    "Author: Dev <dev@example.org>\n"
    "Date:   Tue Mar 3 10:00:00 2020 +0000\n"
    "\n"
    "    fix stack underflow in bit_write_UMC\n"
    "\n"
    "diff --git a/src/bits.c b/src/bits.c\n"
    "index 014b04fe4..a3692bdc6 100644\n"
    "--- a/src/bits.c\n"
    "+++ b/src/bits.c\n"
    "@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)\n"
    "     if (byte[i] & 0x7f)\n"
    "       break;\n"
    " \n"
    "-  if (byte[i] & 0x40)\n"
    "+  if (byte[i] & 0x40 && i > 0)\n"
    "     i--;\n"
    "   byte[i] &= 0x7f;\n"
    "   for (j = 4; j >= i; j--)\n";

}  // namespace

int main() {
  using namespace patchdb;

  // --- 1. Parse.
  const diff::Patch patch = diff::parse_patch(kSecurityPatch);
  std::printf("parsed commit %s\n  subject: %s\n  files: %zu, hunks: %zu, "
              "+%zu/-%zu lines\n\n",
              patch.commit.substr(0, 12).c_str(), patch.message.c_str(),
              patch.files.size(), patch.hunk_count(), patch.added_lines(),
              patch.removed_lines());

  // --- 2. Features (Table I).
  const feature::FeatureVector features = feature::extract(patch);
  std::printf("Table I features (non-zero dimensions):\n");
  const auto names = feature::feature_names();
  for (std::size_t i = 0; i < feature::kFeatureCount; ++i) {
    if (features[i] != 0.0) {
      std::printf("  %-22s = %g\n", std::string(names[i]).c_str(), features[i]);
    }
  }

  // --- 3. Pattern category (Table V).
  const corpus::PatchType type = core::categorize(patch);
  std::printf("\ncategorized as: Type %d (%s)\n\n", static_cast<int>(type),
              std::string(corpus::patch_type_name(type)).c_str());

  // --- 4. Miniature end-to-end PatchDB.
  core::BuildOptions options;
  options.world.repos = 8;
  options.world.nvd_security = 120;
  options.world.wild_pool = 2500;
  options.world.seed = 2021;
  options.augment.max_rounds = 2;
  options.synthesis.max_per_patch = 3;

  std::printf("building a miniature PatchDB (%zu NVD CVEs, %zu wild commits)...\n",
              options.world.nvd_security, options.world.wild_pool);
  const core::PatchDb db = core::build_patchdb(options);

  std::printf("  NVD-based security patches:  %zu\n", db.nvd_security.size());
  std::printf("  wild-based security patches: %zu\n", db.wild_security.size());
  std::printf("  cleaned non-security:        %zu\n", db.nonsecurity.size());
  std::printf("  synthetic patches:           %zu\n", db.synthetic.size());
  std::printf("  verification effort:         %zu oracle checks\n",
              db.verification_effort);
  for (const core::RoundStats& round : db.rounds) {
    std::printf("  round %zu: %zu candidates -> %zu security (%.0f%%)\n",
                round.round, round.candidates, round.verified_security,
                round.ratio * 100.0);
  }
  std::printf("\ndone. See bench/ for the full Table II-VI reproductions.\n");
  return 0;
}
