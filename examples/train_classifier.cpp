// Train-a-classifier walkthrough: build and export a PatchDB, load it
// back from disk (the release format a downstream user would start
// from), and train both paper classifiers on it — the Random Forest on
// Table I features with 5-fold cross validation, and the GRU/RNN on
// token streams with a held-out split.
#include <cstdio>
#include <filesystem>

#include "core/patchdb.h"
#include "feature/features.h"
#include "ml/crossval.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "nn/encode.h"
#include "nn/gru.h"
#include "nn/vocab.h"
#include "store/export.h"
#include "util/rng.h"

int main() {
  using namespace patchdb;
  namespace fs = std::filesystem;

  // --- Build + export + reload (the full dataset lifecycle).
  core::BuildOptions options;
  options.world.repos = 10;
  options.world.nvd_security = 250;
  options.world.wild_pool = 5000;
  options.world.seed = 77;
  options.augment.max_rounds = 2;
  options.synthesis.max_per_patch = 2;

  const fs::path dir = fs::temp_directory_path() / "patchdb_train_example";
  std::printf("building and exporting a PatchDB to %s ...\n", dir.c_str());
  const core::PatchDb db = core::build_patchdb(options);
  store::export_patchdb(db, dir);
  const store::LoadedPatchDb loaded = store::load_patchdb(dir);
  std::printf("loaded: %zu nvd + %zu wild security, %zu non-security, %zu synthetic\n\n",
              loaded.nvd_security.size(), loaded.wild_security.size(),
              loaded.nonsecurity.size(), loaded.synthetic.size());

  // Balance the task: all security patches vs an equal-ish number of
  // non-security commits (the loop's rejected candidates are hard
  // negatives; add clean ones so the negative class has breadth).
  std::vector<const corpus::CommitRecord*> records;
  for (const auto& r : loaded.nvd_security) records.push_back(&r);
  for (const auto& r : loaded.wild_security) records.push_back(&r);
  const std::size_t n_security = records.size();
  // Hard negatives are capped: nearest-link rejects are, by construction,
  // the commits that look most like fixes.
  for (const auto& r : loaded.nonsecurity) {
    records.push_back(&r);
    if (records.size() >= n_security + n_security / 2) break;
  }
  util::Rng extra_rng(5);
  std::vector<corpus::CommitRecord> clean;
  const auto kinds = corpus::nonsecurity_types();
  while (records.size() + clean.size() < 3 * n_security) {
    clean.push_back(corpus::make_commit(extra_rng, "extra",
                                        kinds[extra_rng.index(kinds.size())]));
  }
  for (const auto& r : clean) records.push_back(&r);

  // --- Random Forest on Table I features, 5-fold CV.
  ml::Dataset features;
  for (const corpus::CommitRecord* r : records) {
    const feature::FeatureVector v = feature::extract(r->patch);
    features.push_back(std::vector<double>(v.begin(), v.end()),
                       r->truth.is_security ? 1 : 0);
  }
  const ml::CrossValResult cv = ml::cross_validate(
      features, 5, [] { return std::make_unique<ml::RandomForest>(); }, 11);
  std::printf("Random Forest, 5-fold CV on %zu commits (%zu positive):\n",
              features.size(), features.positives());
  std::printf("  precision %.1f%%  recall %.1f%%  F1 %.1f%%  accuracy %.1f%%\n\n",
              cv.mean_precision() * 100, cv.mean_recall() * 100,
              cv.mean_f1() * 100, cv.mean_accuracy() * 100);

  // --- GRU on token streams, 80/20 split.
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  for (const corpus::CommitRecord* r : records) {
    docs.push_back(nn::patch_tokens(r->patch));
    labels.push_back(r->truth.is_security ? 1 : 0);
  }
  const nn::Vocabulary vocab = nn::Vocabulary::build(docs, 2, 1200);
  nn::SequenceDataset train;
  nn::SequenceDataset test;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    auto& dst = (i % 5 == 0) ? test : train;
    dst.sequences.push_back(vocab.encode(docs[i]));
    dst.labels.push_back(labels[i]);
  }
  nn::GruOptions gru_opt;
  gru_opt.epochs = 5;
  nn::GruClassifier gru(gru_opt);
  std::printf("training the GRU (%zu sequences, vocab %zu)...\n", train.size(),
              vocab.size());
  gru.fit(train, vocab.size(), 13);
  const ml::Confusion c = ml::confusion(test.labels, gru.predict_all(test));
  std::printf("  held-out: precision %.1f%%  recall %.1f%%  F1 %.1f%%\n",
              c.precision() * 100, c.recall() * 100, c.f1() * 100);

  std::printf("\n(the ceiling here is set by the hard negatives: nearest-link\n"
              " rejects are diff-identical to real fixes, which is exactly why\n"
              " the paper needs human experts in the loop)\n");
  fs::remove_all(dir);
  return 0;
}
