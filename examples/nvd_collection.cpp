// NVD collection walkthrough: the Section III-A pipeline in isolation.
// Simulated CVE entries reference GitHub commit URLs; the crawler
// downloads each `.patch`, strips non-C/C++ file changes, and reports
// exactly the dirt the paper describes (entries without patch links,
// dead links, wrong links, dropped .changelog/.sh files).
#include <algorithm>
#include <cstdio>

#include "corpus/world.h"
#include "diff/render.h"

int main() {
  using namespace patchdb;

  corpus::WorldConfig config;
  config.repos = 12;
  config.nvd_security = 300;
  config.wild_pool = 50;  // the wild side is not the focus here
  config.entry_missing_link_prob = 0.25;
  config.dead_link_prob = 0.02;
  config.wrong_link_prob = 0.01;
  config.seed = 20190501;
  const corpus::World world = corpus::build_world(config);

  std::printf("simulated NVD: %zu CVE entries, remote store: %zu pages\n\n",
              world.nvd_entries.size(), world.remote.page_count());

  // A couple of sample entries, as the crawler sees them.
  std::printf("sample CVE entries:\n");
  for (std::size_t i = 0; i < 3 && i < world.nvd_entries.size(); ++i) {
    const corpus::NvdEntry& e = world.nvd_entries[i];
    std::printf("  %s (%s, CVSS %.1f)\n", e.cve_id.c_str(), e.cwe.c_str(),
                e.cvss);
    for (const std::string& url : e.references) {
      const bool tagged =
          std::find(e.patch_tagged.begin(), e.patch_tagged.end(), url) !=
          e.patch_tagged.end();
      std::printf("    ref%s: %s\n", tagged ? " [Patch]" : "", url.c_str());
    }
  }

  const corpus::CrawlStats& s = world.crawl_stats;
  std::printf("\ncrawl report:\n");
  std::printf("  CVE entries scanned:             %zu\n", s.entries_total);
  std::printf("  entries without patch link:      %zu\n", s.entries_without_patch_link);
  std::printf("  links fetched:                   %zu\n", s.links_fetched);
  std::printf("  dead links (404):                %zu\n", s.links_dead);
  std::printf("  unparseable pages:               %zu\n", s.parse_failures);
  std::printf("  non-C/C++ files stripped:        %zu\n", s.dropped_non_cpp_files);
  std::printf("  empty after filtering:           %zu\n", s.dropped_empty_after_filter);
  std::printf("  security patches collected:      %zu\n", s.patches_collected);

  std::printf("\nfirst collected patch:\n%s",
              diff::render_patch(world.nvd_security.front().patch).c_str());

  std::printf("\n(the paper collects 4,076 patches from 313 repositories this "
              "way; every\n collected patch here is C/C++-only, like the "
              "paper's filtered dataset)\n");
  return 0;
}
