// Silent patch hunter: the paper's motivating scenario. 6-10% of GitHub
// commits are security fixes that never get a CVE ("silently published").
// Given a small set of known security patches and a large pile of
// unlabeled commits, rank the pile so a human auditor reviews the most
// promising commits first — exactly what nearest link search is for.
//
// The example compares three review strategies at equal human budget:
//   - random order (brute force),
//   - Random Forest confidence order (pseudo labeling),
//   - nearest link candidates first (PatchDB's method),
// and prints how many real security patches each surfaces.
#include <algorithm>
#include <cstdio>

#include "core/baselines.h"
#include "core/distance.h"
#include "core/nearest_link.h"
#include "corpus/world.h"
#include "feature/features.h"
#include "util/rng.h"

int main() {
  using namespace patchdb;

  // A mid-sized simulated world: 200 known patches, 8000 wild commits.
  corpus::WorldConfig config;
  config.repos = 15;
  config.nvd_security = 200;
  config.wild_pool = 8000;
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 1337;
  corpus::World world = corpus::build_world(config);

  std::printf("known security patches: %zu, unlabeled commits: %zu "
              "(~%.0f%% silent security fixes)\n\n",
              world.nvd_security.size(), world.wild.size(),
              config.wild_security_rate * 100.0);

  // Features for both sides.
  std::vector<diff::Patch> sec_patches;
  for (const auto& r : world.nvd_security) sec_patches.push_back(r.patch);
  std::vector<diff::Patch> wild_patches;
  for (const auto& r : world.wild) wild_patches.push_back(r.patch);
  const feature::FeatureMatrix sec = feature::extract_all(sec_patches);
  const feature::FeatureMatrix wild = feature::extract_all(wild_patches);

  const std::size_t budget = world.nvd_security.size();  // human review budget

  auto score = [&](const char* label, const std::vector<std::size_t>& order) {
    std::size_t found = 0;
    for (std::size_t i = 0; i < budget && i < order.size(); ++i) {
      found += world.wild[order[i]].truth.is_security;
    }
    std::printf("  %-28s %4zu real security patches in the first %zu reviews "
                "(%.0f%% hit rate)\n",
                label, found, budget,
                100.0 * static_cast<double>(found) / static_cast<double>(budget));
  };

  // Strategy 1: random review order.
  {
    util::Rng rng(1);
    std::vector<std::size_t> order(world.wild.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    score("random order:", order);
  }

  // Strategy 2: Random Forest confidence (needs labeled non-security too;
  // use an equal-sized refactor/feature set as the negative class).
  {
    util::Rng rng(2);
    ml::Dataset train;
    for (std::size_t i = 0; i < sec.rows(); ++i) {
      train.push_back(std::vector<double>(sec[i].begin(), sec[i].end()), 1);
    }
    const auto kinds = corpus::nonsecurity_types();
    for (std::size_t i = 0; i < sec.rows() * 2; ++i) {
      const auto rec = corpus::make_commit(
          rng, "hunter", kinds[rng.index(kinds.size())]);
      const feature::FeatureVector v = feature::extract(rec.patch);
      train.push_back(std::vector<double>(v.begin(), v.end()), 0);
    }
    const auto top = core::pseudo_label_select(train, wild, budget, 3);
    score("Random Forest confidence:", top);
  }

  // Strategy 3: nearest link search.
  {
    const core::DistanceMatrix d = core::distance_matrix(sec, wild);
    const core::LinkResult link = core::nearest_link_search(d);
    score("nearest link candidates:", link.candidate);
  }

  std::printf("\nnearest link focuses the human budget on the neighborhood of\n"
              "known fixes, which is why PatchDB's augmentation loop (Table II)\n"
              "triples the brute-force hit rate.\n");
  return 0;
}
