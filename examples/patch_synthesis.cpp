// Patch synthesis walkthrough: take one natural security patch, show the
// BEFORE/AFTER source, locate the `if` statements the patch touches, and
// print every synthetic variant the Fig. 5 templates produce — the full
// Section III-C pipeline, narrated.
#include <cstdio>

#include "corpus/repo.h"
#include "diff/render.h"
#include "lang/parser.h"
#include "synth/synthesize.h"
#include "util/rng.h"

int main() {
  using namespace patchdb;

  // Fabricate a bound-check security patch with file snapshots (retrying
  // seeds until the patch actually touches an `if`, like ~70% do).
  corpus::CommitOptions commit_opt;
  commit_opt.keep_snapshots = true;
  commit_opt.noise_file_prob = 0.0;
  commit_opt.multi_file_prob = 0.0;

  corpus::CommitRecord record;
  std::vector<synth::SyntheticPatch> synthetic;
  synth::SynthesisOptions synth_opt;
  synth_opt.max_per_patch = 0;  // enumerate all variants
  for (std::uint64_t seed = 1; seed < 64 && synthetic.empty(); ++seed) {
    util::Rng rng(seed);
    record = corpus::make_commit(rng, "demo", corpus::PatchType::kBoundCheck,
                                 commit_opt);
    synthetic = synth::synthesize(record, synth_opt, seed);
  }

  std::printf("=== the natural security patch ===\n%s\n",
              diff::render_patch(record.patch).c_str());

  // Show the if statements the patch touches in the AFTER version.
  const corpus::FileSnapshot& snap = record.snapshots.front();
  const lang::ParsedFile parsed = lang::parse_file(snap.after);
  std::printf("=== if statements in %s (AFTER version) ===\n", snap.path.c_str());
  for (const lang::IfStatementInfo& info : parsed.ifs) {
    std::printf("  IfStmt <line:%zu, line:%zu> cond: %s\n", info.if_line,
                info.stmt_end_line, info.condition.c_str());
  }

  std::printf("\n=== %zu synthetic variants ===\n", synthetic.size());
  for (const synth::SyntheticPatch& s : synthetic) {
    std::printf("\n--- variant %d (%s), %s version modified ---\n",
                static_cast<int>(s.variant), synth::variant_name(s.variant),
                s.modified_after ? "AFTER" : "BEFORE");
    std::printf("%s", diff::render_file_diffs(s.patch.files).c_str());
  }

  std::printf("\nEach synthetic patch keeps the original fix semantics but\n"
              "adds control-flow complexity, enriching a small training set\n"
              "(Table IV: +3.9%% precision on the NVD-based dataset).\n");
  return 0;
}
