# Empty dependencies file for table3_baselines.
# This may be replaced when dependencies are built.
