# Empty compiler generated dependencies file for fig6_distribution.
# This may be replaced when dependencies are built.
