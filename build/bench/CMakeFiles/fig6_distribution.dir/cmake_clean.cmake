file(REMOVE_RECURSE
  "CMakeFiles/fig6_distribution.dir/fig6_distribution.cpp.o"
  "CMakeFiles/fig6_distribution.dir/fig6_distribution.cpp.o.d"
  "fig6_distribution"
  "fig6_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
