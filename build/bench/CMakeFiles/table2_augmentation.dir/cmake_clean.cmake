file(REMOVE_RECURSE
  "CMakeFiles/table2_augmentation.dir/table2_augmentation.cpp.o"
  "CMakeFiles/table2_augmentation.dir/table2_augmentation.cpp.o.d"
  "table2_augmentation"
  "table2_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
