# Empty dependencies file for table2_augmentation.
# This may be replaced when dependencies are built.
