file(REMOVE_RECURSE
  "CMakeFiles/ext_type_classification.dir/ext_type_classification.cpp.o"
  "CMakeFiles/ext_type_classification.dir/ext_type_classification.cpp.o.d"
  "ext_type_classification"
  "ext_type_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_type_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
