# Empty dependencies file for ext_type_classification.
# This may be replaced when dependencies are built.
