# Empty dependencies file for ext_text_mining.
# This may be replaced when dependencies are built.
