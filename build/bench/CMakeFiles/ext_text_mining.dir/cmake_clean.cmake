file(REMOVE_RECURSE
  "CMakeFiles/ext_text_mining.dir/ext_text_mining.cpp.o"
  "CMakeFiles/ext_text_mining.dir/ext_text_mining.cpp.o.d"
  "ext_text_mining"
  "ext_text_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_text_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
