# Empty dependencies file for fig5_variants.
# This may be replaced when dependencies are built.
