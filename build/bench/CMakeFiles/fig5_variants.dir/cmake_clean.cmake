file(REMOVE_RECURSE
  "CMakeFiles/fig5_variants.dir/fig5_variants.cpp.o"
  "CMakeFiles/fig5_variants.dir/fig5_variants.cpp.o.d"
  "fig5_variants"
  "fig5_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
