# Empty dependencies file for table4_synthetic.
# This may be replaced when dependencies are built.
