file(REMOVE_RECURSE
  "CMakeFiles/table4_synthetic.dir/table4_synthetic.cpp.o"
  "CMakeFiles/table4_synthetic.dir/table4_synthetic.cpp.o.d"
  "table4_synthetic"
  "table4_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
