# Empty compiler generated dependencies file for table5_composition.
# This may be replaced when dependencies are built.
