file(REMOVE_RECURSE
  "CMakeFiles/table5_composition.dir/table5_composition.cpp.o"
  "CMakeFiles/table5_composition.dir/table5_composition.cpp.o.d"
  "table5_composition"
  "table5_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
