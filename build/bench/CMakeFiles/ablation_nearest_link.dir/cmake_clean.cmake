file(REMOVE_RECURSE
  "CMakeFiles/ablation_nearest_link.dir/ablation_nearest_link.cpp.o"
  "CMakeFiles/ablation_nearest_link.dir/ablation_nearest_link.cpp.o.d"
  "ablation_nearest_link"
  "ablation_nearest_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nearest_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
