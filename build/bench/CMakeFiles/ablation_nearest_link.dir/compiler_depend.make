# Empty compiler generated dependencies file for ablation_nearest_link.
# This may be replaced when dependencies are built.
