# Empty compiler generated dependencies file for ext_clone_detection.
# This may be replaced when dependencies are built.
