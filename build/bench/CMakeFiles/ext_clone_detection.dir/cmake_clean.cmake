file(REMOVE_RECURSE
  "CMakeFiles/ext_clone_detection.dir/ext_clone_detection.cpp.o"
  "CMakeFiles/ext_clone_detection.dir/ext_clone_detection.cpp.o.d"
  "ext_clone_detection"
  "ext_clone_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clone_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
