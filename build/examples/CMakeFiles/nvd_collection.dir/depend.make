# Empty dependencies file for nvd_collection.
# This may be replaced when dependencies are built.
