file(REMOVE_RECURSE
  "CMakeFiles/nvd_collection.dir/nvd_collection.cpp.o"
  "CMakeFiles/nvd_collection.dir/nvd_collection.cpp.o.d"
  "nvd_collection"
  "nvd_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvd_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
