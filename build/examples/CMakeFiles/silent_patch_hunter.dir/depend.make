# Empty dependencies file for silent_patch_hunter.
# This may be replaced when dependencies are built.
