file(REMOVE_RECURSE
  "CMakeFiles/silent_patch_hunter.dir/silent_patch_hunter.cpp.o"
  "CMakeFiles/silent_patch_hunter.dir/silent_patch_hunter.cpp.o.d"
  "silent_patch_hunter"
  "silent_patch_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silent_patch_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
