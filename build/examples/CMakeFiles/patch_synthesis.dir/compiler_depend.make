# Empty compiler generated dependencies file for patch_synthesis.
# This may be replaced when dependencies are built.
