file(REMOVE_RECURSE
  "CMakeFiles/patch_synthesis.dir/patch_synthesis.cpp.o"
  "CMakeFiles/patch_synthesis.dir/patch_synthesis.cpp.o.d"
  "patch_synthesis"
  "patch_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
