
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/patchdb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/patchdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/patchdb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/patchdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/patchdb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/patchdb_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/patchdb_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/patchdb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/patchdb_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
