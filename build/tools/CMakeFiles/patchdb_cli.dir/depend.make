# Empty dependencies file for patchdb_cli.
# This may be replaced when dependencies are built.
