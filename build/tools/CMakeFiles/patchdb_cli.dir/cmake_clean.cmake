file(REMOVE_RECURSE
  "CMakeFiles/patchdb_cli.dir/patchdb_cli.cpp.o"
  "CMakeFiles/patchdb_cli.dir/patchdb_cli.cpp.o.d"
  "patchdb"
  "patchdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
