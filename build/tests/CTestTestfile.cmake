# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/feature_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
