file(REMOVE_RECURSE
  "CMakeFiles/patchdb_text.dir/textmine.cpp.o"
  "CMakeFiles/patchdb_text.dir/textmine.cpp.o.d"
  "libpatchdb_text.a"
  "libpatchdb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
