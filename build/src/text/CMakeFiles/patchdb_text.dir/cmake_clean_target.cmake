file(REMOVE_RECURSE
  "libpatchdb_text.a"
)
