# Empty dependencies file for patchdb_text.
# This may be replaced when dependencies are built.
