file(REMOVE_RECURSE
  "libpatchdb_core.a"
)
