
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augment.cpp" "src/core/CMakeFiles/patchdb_core.dir/augment.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/augment.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/patchdb_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/categorize.cpp" "src/core/CMakeFiles/patchdb_core.dir/categorize.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/categorize.cpp.o.d"
  "/root/repo/src/core/clone.cpp" "src/core/CMakeFiles/patchdb_core.dir/clone.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/clone.cpp.o.d"
  "/root/repo/src/core/dedupe.cpp" "src/core/CMakeFiles/patchdb_core.dir/dedupe.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/dedupe.cpp.o.d"
  "/root/repo/src/core/distance.cpp" "src/core/CMakeFiles/patchdb_core.dir/distance.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/distance.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/patchdb_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/nearest_link.cpp" "src/core/CMakeFiles/patchdb_core.dir/nearest_link.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/nearest_link.cpp.o.d"
  "/root/repo/src/core/patchdb.cpp" "src/core/CMakeFiles/patchdb_core.dir/patchdb.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/patchdb.cpp.o.d"
  "/root/repo/src/core/presence.cpp" "src/core/CMakeFiles/patchdb_core.dir/presence.cpp.o" "gcc" "src/core/CMakeFiles/patchdb_core.dir/presence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/feature/CMakeFiles/patchdb_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/patchdb_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/patchdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/patchdb_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/patchdb_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
