# Empty compiler generated dependencies file for patchdb_core.
# This may be replaced when dependencies are built.
