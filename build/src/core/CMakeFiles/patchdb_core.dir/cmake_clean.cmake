file(REMOVE_RECURSE
  "CMakeFiles/patchdb_core.dir/augment.cpp.o"
  "CMakeFiles/patchdb_core.dir/augment.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/baselines.cpp.o"
  "CMakeFiles/patchdb_core.dir/baselines.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/categorize.cpp.o"
  "CMakeFiles/patchdb_core.dir/categorize.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/clone.cpp.o"
  "CMakeFiles/patchdb_core.dir/clone.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/dedupe.cpp.o"
  "CMakeFiles/patchdb_core.dir/dedupe.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/distance.cpp.o"
  "CMakeFiles/patchdb_core.dir/distance.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/incremental.cpp.o"
  "CMakeFiles/patchdb_core.dir/incremental.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/nearest_link.cpp.o"
  "CMakeFiles/patchdb_core.dir/nearest_link.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/patchdb.cpp.o"
  "CMakeFiles/patchdb_core.dir/patchdb.cpp.o.d"
  "CMakeFiles/patchdb_core.dir/presence.cpp.o"
  "CMakeFiles/patchdb_core.dir/presence.cpp.o.d"
  "libpatchdb_core.a"
  "libpatchdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
