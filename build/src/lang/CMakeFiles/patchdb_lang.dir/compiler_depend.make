# Empty compiler generated dependencies file for patchdb_lang.
# This may be replaced when dependencies are built.
