file(REMOVE_RECURSE
  "libpatchdb_lang.a"
)
