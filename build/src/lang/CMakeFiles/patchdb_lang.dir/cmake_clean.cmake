file(REMOVE_RECURSE
  "CMakeFiles/patchdb_lang.dir/abstract.cpp.o"
  "CMakeFiles/patchdb_lang.dir/abstract.cpp.o.d"
  "CMakeFiles/patchdb_lang.dir/lexer.cpp.o"
  "CMakeFiles/patchdb_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/patchdb_lang.dir/parser.cpp.o"
  "CMakeFiles/patchdb_lang.dir/parser.cpp.o.d"
  "CMakeFiles/patchdb_lang.dir/taxonomy.cpp.o"
  "CMakeFiles/patchdb_lang.dir/taxonomy.cpp.o.d"
  "libpatchdb_lang.a"
  "libpatchdb_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
