file(REMOVE_RECURSE
  "libpatchdb_util.a"
)
