# Empty dependencies file for patchdb_util.
# This may be replaced when dependencies are built.
