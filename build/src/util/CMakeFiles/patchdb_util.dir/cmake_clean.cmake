file(REMOVE_RECURSE
  "CMakeFiles/patchdb_util.dir/levenshtein.cpp.o"
  "CMakeFiles/patchdb_util.dir/levenshtein.cpp.o.d"
  "CMakeFiles/patchdb_util.dir/log.cpp.o"
  "CMakeFiles/patchdb_util.dir/log.cpp.o.d"
  "CMakeFiles/patchdb_util.dir/stats.cpp.o"
  "CMakeFiles/patchdb_util.dir/stats.cpp.o.d"
  "CMakeFiles/patchdb_util.dir/strings.cpp.o"
  "CMakeFiles/patchdb_util.dir/strings.cpp.o.d"
  "CMakeFiles/patchdb_util.dir/table.cpp.o"
  "CMakeFiles/patchdb_util.dir/table.cpp.o.d"
  "CMakeFiles/patchdb_util.dir/thread_pool.cpp.o"
  "CMakeFiles/patchdb_util.dir/thread_pool.cpp.o.d"
  "libpatchdb_util.a"
  "libpatchdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
