file(REMOVE_RECURSE
  "CMakeFiles/patchdb_corpus.dir/codegen.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/codegen.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/gitlog.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/gitlog.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/mutate.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/mutate.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/nvd.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/nvd.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/oracle.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/oracle.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/repo.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/repo.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/taxonomy.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/taxonomy.cpp.o.d"
  "CMakeFiles/patchdb_corpus.dir/world.cpp.o"
  "CMakeFiles/patchdb_corpus.dir/world.cpp.o.d"
  "libpatchdb_corpus.a"
  "libpatchdb_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
