file(REMOVE_RECURSE
  "libpatchdb_corpus.a"
)
