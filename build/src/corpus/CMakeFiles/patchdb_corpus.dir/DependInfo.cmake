
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/codegen.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/codegen.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/codegen.cpp.o.d"
  "/root/repo/src/corpus/gitlog.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/gitlog.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/gitlog.cpp.o.d"
  "/root/repo/src/corpus/mutate.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/mutate.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/mutate.cpp.o.d"
  "/root/repo/src/corpus/nvd.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/nvd.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/nvd.cpp.o.d"
  "/root/repo/src/corpus/oracle.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/oracle.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/oracle.cpp.o.d"
  "/root/repo/src/corpus/repo.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/repo.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/repo.cpp.o.d"
  "/root/repo/src/corpus/taxonomy.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/taxonomy.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/taxonomy.cpp.o.d"
  "/root/repo/src/corpus/world.cpp" "src/corpus/CMakeFiles/patchdb_corpus.dir/world.cpp.o" "gcc" "src/corpus/CMakeFiles/patchdb_corpus.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diff/CMakeFiles/patchdb_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/patchdb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
