# Empty compiler generated dependencies file for patchdb_corpus.
# This may be replaced when dependencies are built.
