
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feature/features.cpp" "src/feature/CMakeFiles/patchdb_feature.dir/features.cpp.o" "gcc" "src/feature/CMakeFiles/patchdb_feature.dir/features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diff/CMakeFiles/patchdb_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/patchdb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
