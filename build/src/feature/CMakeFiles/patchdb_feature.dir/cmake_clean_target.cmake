file(REMOVE_RECURSE
  "libpatchdb_feature.a"
)
