file(REMOVE_RECURSE
  "CMakeFiles/patchdb_feature.dir/features.cpp.o"
  "CMakeFiles/patchdb_feature.dir/features.cpp.o.d"
  "libpatchdb_feature.a"
  "libpatchdb_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
