# Empty compiler generated dependencies file for patchdb_feature.
# This may be replaced when dependencies are built.
