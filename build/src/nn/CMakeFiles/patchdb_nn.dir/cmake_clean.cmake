file(REMOVE_RECURSE
  "CMakeFiles/patchdb_nn.dir/encode.cpp.o"
  "CMakeFiles/patchdb_nn.dir/encode.cpp.o.d"
  "CMakeFiles/patchdb_nn.dir/gru.cpp.o"
  "CMakeFiles/patchdb_nn.dir/gru.cpp.o.d"
  "CMakeFiles/patchdb_nn.dir/vocab.cpp.o"
  "CMakeFiles/patchdb_nn.dir/vocab.cpp.o.d"
  "libpatchdb_nn.a"
  "libpatchdb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
