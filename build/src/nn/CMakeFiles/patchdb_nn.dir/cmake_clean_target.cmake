file(REMOVE_RECURSE
  "libpatchdb_nn.a"
)
