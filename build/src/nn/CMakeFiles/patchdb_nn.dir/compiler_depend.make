# Empty compiler generated dependencies file for patchdb_nn.
# This may be replaced when dependencies are built.
