# Empty compiler generated dependencies file for patchdb_store.
# This may be replaced when dependencies are built.
