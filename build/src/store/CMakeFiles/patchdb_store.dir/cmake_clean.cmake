file(REMOVE_RECURSE
  "CMakeFiles/patchdb_store.dir/export.cpp.o"
  "CMakeFiles/patchdb_store.dir/export.cpp.o.d"
  "libpatchdb_store.a"
  "libpatchdb_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
