file(REMOVE_RECURSE
  "libpatchdb_store.a"
)
