file(REMOVE_RECURSE
  "CMakeFiles/patchdb_diff.dir/apply.cpp.o"
  "CMakeFiles/patchdb_diff.dir/apply.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/filter.cpp.o"
  "CMakeFiles/patchdb_diff.dir/filter.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/fuzz_apply.cpp.o"
  "CMakeFiles/patchdb_diff.dir/fuzz_apply.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/myers.cpp.o"
  "CMakeFiles/patchdb_diff.dir/myers.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/parse.cpp.o"
  "CMakeFiles/patchdb_diff.dir/parse.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/patch.cpp.o"
  "CMakeFiles/patchdb_diff.dir/patch.cpp.o.d"
  "CMakeFiles/patchdb_diff.dir/render.cpp.o"
  "CMakeFiles/patchdb_diff.dir/render.cpp.o.d"
  "libpatchdb_diff.a"
  "libpatchdb_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
