
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diff/apply.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/apply.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/apply.cpp.o.d"
  "/root/repo/src/diff/filter.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/filter.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/filter.cpp.o.d"
  "/root/repo/src/diff/fuzz_apply.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/fuzz_apply.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/fuzz_apply.cpp.o.d"
  "/root/repo/src/diff/myers.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/myers.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/myers.cpp.o.d"
  "/root/repo/src/diff/parse.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/parse.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/parse.cpp.o.d"
  "/root/repo/src/diff/patch.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/patch.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/patch.cpp.o.d"
  "/root/repo/src/diff/render.cpp" "src/diff/CMakeFiles/patchdb_diff.dir/render.cpp.o" "gcc" "src/diff/CMakeFiles/patchdb_diff.dir/render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
