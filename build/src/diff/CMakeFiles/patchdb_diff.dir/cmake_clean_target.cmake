file(REMOVE_RECURSE
  "libpatchdb_diff.a"
)
