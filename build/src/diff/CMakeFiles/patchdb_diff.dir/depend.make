# Empty dependencies file for patchdb_diff.
# This may be replaced when dependencies are built.
