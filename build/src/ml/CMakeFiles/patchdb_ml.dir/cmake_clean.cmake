file(REMOVE_RECURSE
  "CMakeFiles/patchdb_ml.dir/bayes.cpp.o"
  "CMakeFiles/patchdb_ml.dir/bayes.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/crossval.cpp.o"
  "CMakeFiles/patchdb_ml.dir/crossval.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/data.cpp.o"
  "CMakeFiles/patchdb_ml.dir/data.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/ensemble.cpp.o"
  "CMakeFiles/patchdb_ml.dir/ensemble.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/forest.cpp.o"
  "CMakeFiles/patchdb_ml.dir/forest.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/knn.cpp.o"
  "CMakeFiles/patchdb_ml.dir/knn.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/linear.cpp.o"
  "CMakeFiles/patchdb_ml.dir/linear.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/metrics.cpp.o"
  "CMakeFiles/patchdb_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/multiclass.cpp.o"
  "CMakeFiles/patchdb_ml.dir/multiclass.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/normalize.cpp.o"
  "CMakeFiles/patchdb_ml.dir/normalize.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/smo.cpp.o"
  "CMakeFiles/patchdb_ml.dir/smo.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/smote.cpp.o"
  "CMakeFiles/patchdb_ml.dir/smote.cpp.o.d"
  "CMakeFiles/patchdb_ml.dir/tree.cpp.o"
  "CMakeFiles/patchdb_ml.dir/tree.cpp.o.d"
  "libpatchdb_ml.a"
  "libpatchdb_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
