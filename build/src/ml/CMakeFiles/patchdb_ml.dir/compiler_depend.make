# Empty compiler generated dependencies file for patchdb_ml.
# This may be replaced when dependencies are built.
