file(REMOVE_RECURSE
  "libpatchdb_ml.a"
)
