
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bayes.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/bayes.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/bayes.cpp.o.d"
  "/root/repo/src/ml/crossval.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/crossval.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/crossval.cpp.o.d"
  "/root/repo/src/ml/data.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/data.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/data.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/multiclass.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/multiclass.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/multiclass.cpp.o.d"
  "/root/repo/src/ml/normalize.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/normalize.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/normalize.cpp.o.d"
  "/root/repo/src/ml/smo.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/smo.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/smo.cpp.o.d"
  "/root/repo/src/ml/smote.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/smote.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/smote.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/patchdb_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/patchdb_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
