# Empty dependencies file for patchdb_synth.
# This may be replaced when dependencies are built.
