file(REMOVE_RECURSE
  "CMakeFiles/patchdb_synth.dir/synthesize.cpp.o"
  "CMakeFiles/patchdb_synth.dir/synthesize.cpp.o.d"
  "CMakeFiles/patchdb_synth.dir/variants.cpp.o"
  "CMakeFiles/patchdb_synth.dir/variants.cpp.o.d"
  "libpatchdb_synth.a"
  "libpatchdb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchdb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
