
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/synthesize.cpp" "src/synth/CMakeFiles/patchdb_synth.dir/synthesize.cpp.o" "gcc" "src/synth/CMakeFiles/patchdb_synth.dir/synthesize.cpp.o.d"
  "/root/repo/src/synth/variants.cpp" "src/synth/CMakeFiles/patchdb_synth.dir/variants.cpp.o" "gcc" "src/synth/CMakeFiles/patchdb_synth.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diff/CMakeFiles/patchdb_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/patchdb_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/patchdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
