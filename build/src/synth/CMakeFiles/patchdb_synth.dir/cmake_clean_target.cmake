file(REMOVE_RECURSE
  "libpatchdb_synth.a"
)
